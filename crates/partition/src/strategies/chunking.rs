//! Chunk-based partitioning, after Gemini (OSDI'16 — cited in the paper's
//! §2.2: "Gemini also includes a chunk-based partitioning scheme that
//! leverages the natural locality in real world graphs").
//!
//! Real-world edge lists arrive sorted by source id, and consecutive ids are
//! strongly connected (grid neighbors in road networks, pages of the same
//! domain in crawls). Chunking simply cuts the sorted edge stream into `P`
//! equal-size contiguous chunks: perfect edge balance by construction, and
//! every vertex's out-edges land in at most two partitions. Replication
//! quality then depends entirely on how much locality the id order carries —
//! excellent for road networks and web crawls, weaker for social networks
//! whose hubs are followed from every chunk.

use crate::assignment::Assignment;
use crate::partitioner::{loader_chunks, PartitionContext, PartitionOutcome, Partitioner};
use gp_core::{PartitionId, StreamingEdges};

/// Gemini-style chunking partitioner.
#[derive(Debug, Default, Clone)]
pub struct Chunking;

impl Partitioner for Chunking {
    fn name(&self) -> &'static str {
        "Chunking"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let m = graph.num_edges();
        let p = ctx.num_partitions as usize;
        let parts: Vec<PartitionId> = gp_par::map_chunks(&ctx.par, m, |_, range| {
            range
                .map(|i| PartitionId(((i * p) / m.max(1)).min(p - 1) as u32))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let assignment = Assignment::from_edge_partitions_par(
            graph,
            parts,
            ctx.num_partitions,
            ctx.seed,
            &ctx.par,
        );
        // One pass; chunk boundaries need the total edge count, which the
        // loader learns from file sizes — no extra scan.
        let loader_work = loader_chunks(m, ctx.num_loaders)
            .into_iter()
            .map(|c| c as f64 * (ctx.cost.parse_edge + ctx.cost.hash_assign * 0.5))
            .collect();
        let outcome = PartitionOutcome {
            assignment,
            loader_work,
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{Grid, Random};
    use gp_core::{EdgeList, VertexId};

    fn ctx(p: u32) -> PartitionContext {
        PartitionContext::new(p)
    }

    #[test]
    fn edge_balance_is_perfect() {
        let g = gp_gen::barabasi_albert(5_000, 8, 1);
        let out = Chunking.partition(&g, &ctx(9));
        let b = out.assignment.balance();
        assert!(
            b.max - b.min <= 1,
            "chunking balances by construction: {b:?}"
        );
    }

    #[test]
    fn out_edges_span_at_most_two_partitions() {
        // Sorted streams keep a vertex's out-edges contiguous, so a chunk
        // boundary can split them at most once.
        let g = gp_gen::web_graph(
            &gp_gen::WebGraphParams {
                domains: 300,
                ..Default::default()
            },
            2,
        );
        let out = Chunking.partition(&g, &ctx(8));
        let mut spans = vec![std::collections::BTreeSet::new(); g.num_vertices() as usize];
        for (i, e) in g.edges().iter().enumerate() {
            spans[e.src.index()].insert(out.assignment.edge_partition(i).0);
        }
        for (v, s) in spans.iter().enumerate() {
            assert!(s.len() <= 2, "v{v} out-edges span {} partitions", s.len());
        }
    }

    #[test]
    fn chunking_excels_on_road_networks() {
        let g = gp_gen::road_network(
            &gp_gen::RoadNetworkParams {
                width: 80,
                height: 80,
                ..Default::default()
            },
            3,
        );
        let c = Chunking
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        let r = Random
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        let grid = Grid::strict()
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(c < r * 0.6, "chunking {c:.2} vs random {r:.2}");
        assert!(c < grid, "chunking {c:.2} vs grid {grid:.2}");
    }

    #[test]
    fn locality_benefit_shrinks_on_social_networks() {
        // Hubs are followed from every chunk, so chunking's replication
        // factor on a heavy-tailed graph is several times its road-network
        // value — the id order carries much less locality.
        let road = gp_gen::road_network(
            &gp_gen::RoadNetworkParams {
                width: 80,
                height: 80,
                ..Default::default()
            },
            5,
        );
        let social = gp_gen::barabasi_albert(10_000, 8, 5);
        let c_road = Chunking
            .partition(&road, &ctx(9))
            .assignment
            .replication_factor();
        let c_social = Chunking
            .partition(&social, &ctx(9))
            .assignment
            .replication_factor();
        assert!(
            c_social > 2.0 * c_road,
            "social {c_social:.2} vs road {c_road:.2}"
        );
    }

    #[test]
    fn single_partition_and_empty_graph_are_fine() {
        let g = gp_gen::erdos_renyi(100, 500, 1);
        let out = Chunking.partition(&g, &ctx(1));
        assert_eq!(out.assignment.replication_factor(), 1.0);
        let empty = EdgeList::default();
        let out = Chunking.partition(&empty, &ctx(4));
        assert_eq!(out.assignment.num_edges(), 0);
    }

    #[test]
    fn partitions_are_monotone_in_stream_order() {
        let g = gp_gen::erdos_renyi(500, 3_000, 7);
        let out = Chunking.partition(&g, &ctx(6));
        for i in 1..g.num_edges() {
            assert!(out.assignment.edge_partition(i) >= out.assignment.edge_partition(i - 1));
        }
        let _ = VertexId(0);
    }
}
