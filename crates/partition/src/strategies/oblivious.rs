//! Oblivious greedy partitioning (§5.2.2, Appendix A).
//!
//! Oblivious places each edge to greedily minimize the replication-factor
//! objective, which devolves into four cases on the already-placed replica
//! sets `A(u)`, `A(v)`:
//!
//! 1. `A(u) ∩ A(v) ≠ ∅` — place on the least-loaded machine in the
//!    intersection.
//! 2. only one endpoint placed — least-loaded machine among its replicas.
//! 3. neither placed — least-loaded machine overall.
//! 4. both placed, disjoint — least-loaded machine in the union.
//!
//! Ties break randomly; "least loaded" counts edges assigned so far.
//!
//! In PowerGraph's distributed ingress, each loading machine keeps **its own**
//! `A(v)` and load table — it is *oblivious* to the other loaders' decisions
//! (§5.2.2). We model exactly that: the edge stream is split into one block
//! per loader and each block is partitioned by an independent instance of the
//! heuristic. With `num_loaders == 1` you get the idealized centralized
//! variant.

use crate::assignment::Assignment;
use crate::partitioner::{loader_ranges, PartitionContext, PartitionOutcome, Partitioner};
use crate::speculative::{self, edge_rng, ScoreScratch, SpecStats, WindowKernel};
use gp_core::{
    for_each_edge, Edge, PartitionId, PartitionSet, Splitmix64, StreamingEdges, VertexId,
};

/// Oblivious greedy vertex-cut partitioner.
#[derive(Debug, Default, Clone)]
pub struct Oblivious;

/// Per-loader greedy state shared by Oblivious and HDRF: replica sets known
/// to this loader, per-partition edge loads, and a tie-break PRNG.
///
/// Replica sets are a dense vertex-indexed table of [`PartitionSet`]
/// bitsets (vertex ids are `0..n` by construction), so the per-edge hot
/// path does two O(1) bit inserts and O(1) membership probes — no hashing,
/// no per-vertex heap lists.
pub(crate) struct GreedyState {
    /// `a[v]` = partitions this loader has placed `v` on.
    pub a: Vec<PartitionSet>,
    /// Edges this loader has assigned to each partition.
    pub load: Vec<u64>,
    /// Tie-break PRNG.
    pub rng: Splitmix64,
    /// Simulated work units burned by this loader.
    pub work: f64,
    /// Edges assigned so far (drives the capacity cap).
    pub assigned: u64,
    /// Load-balance slack: a partition may exceed the running average by at
    /// most this factor. PowerGraph's greedy ingress enforces the same kind
    /// of capacity constraint ("partitions are balanced in order to avoid
    /// overloading individual servers", §1).
    pub balance_slack: f64,
    /// Running replica-state memory estimate, kept formula-compatible with
    /// the historical per-vertex-list accounting (32 bytes per touched
    /// vertex + 4 per replica entry) so ingress memory reports are stable.
    replica_bytes: u64,
}

impl GreedyState {
    pub fn new(num_partitions: u32, num_vertices: u64, seed: u64) -> Self {
        GreedyState {
            a: vec![PartitionSet::new(); num_vertices as usize],
            load: vec![0; num_partitions as usize],
            rng: Splitmix64::new(seed),
            work: 0.0,
            assigned: 0,
            balance_slack: 1.1,
            replica_bytes: 0,
        }
    }

    /// Maximum edges a partition may currently hold.
    #[inline]
    pub fn capacity(&self) -> u64 {
        (self.balance_slack * self.assigned as f64 / self.load.len() as f64) as u64 + 4
    }

    /// Partitions this loader has placed `v` on.
    #[inline]
    pub fn replicas(&self, v: VertexId) -> &PartitionSet {
        &self.a[v.index()]
    }

    /// Record that edge `e` was placed on `p`.
    pub fn commit(&mut self, e: Edge, p: PartitionId) {
        self.load[p.index()] += 1;
        self.assigned += 1;
        for v in [e.src, e.dst] {
            let set = &mut self.a[v.index()];
            if set.insert(p.0) {
                self.replica_bytes += if set.len() == 1 { 36 } else { 4 };
            }
        }
    }

    /// Least-loaded partition over all partitions, ties broken uniformly at
    /// random (one PRNG draw, matching the historical candidate-list code).
    pub fn least_loaded_all(&mut self) -> PartitionId {
        let min = *self.load.iter().min().expect("partitions > 0");
        let tied = self.load.iter().filter(|&&l| l == min).count() as u64;
        let pick = self.rng.next_below(tied);
        let mut seen = 0;
        for (c, &l) in self.load.iter().enumerate() {
            if l == min {
                if seen == pick {
                    return PartitionId(c as u32);
                }
                seen += 1;
            }
        }
        unreachable!("pick < tied count")
    }

    /// Least-loaded partition among the candidate set, ties broken
    /// uniformly at random. Candidates iterate in ascending order (bit
    /// scan), so tie-breaking is identical to the historical sorted-list
    /// scan. The set must be non-empty.
    pub fn least_loaded_in(&mut self, candidates: &PartitionSet) -> PartitionId {
        let min = candidates
            .iter()
            .map(|c| self.load[c as usize])
            .min()
            .expect("non-empty candidate set");
        let tied = candidates
            .iter()
            .filter(|&c| self.load[c as usize] == min)
            .count() as u64;
        let pick = self.rng.next_below(tied);
        let mut seen = 0;
        for c in candidates.iter() {
            if self.load[c as usize] == min {
                if seen == pick {
                    return PartitionId(c);
                }
                seen += 1;
            }
        }
        unreachable!("pick < tied count")
    }

    /// Approximate bytes of loader state (for ingress memory accounting).
    pub fn state_bytes(&self) -> u64 {
        self.replica_bytes + 8 * self.load.len() as u64
    }
}

/// Appendix A's case analysis, shared with HDRF's candidate enumeration.
/// The preferred candidate set is overridden by the global least-loaded
/// machine when every preferred machine is at capacity.
pub(crate) fn oblivious_choose(state: &mut GreedyState, e: Edge) -> PartitionId {
    // Inline bitset copies (no heap traffic for ≤256 partitions); the
    // intersection/union cases are word-wise AND/OR.
    let au = state.replicas(e.src).clone();
    let av = state.replicas(e.dst).clone();
    let inter = au.intersection(&av);
    let choice = if !inter.is_empty() {
        // Case 1: replicas of both already co-located somewhere.
        state.least_loaded_in(&inter)
    } else if au.is_empty() && av.is_empty() {
        // Case 3: fresh edge.
        state.least_loaded_all()
    } else if av.is_empty() {
        // Case 2: only u placed.
        state.least_loaded_in(&au)
    } else if au.is_empty() {
        // Case 2 (symmetric): only v placed.
        state.least_loaded_in(&av)
    } else {
        // Case 4: both placed, disjoint — least loaded in the union.
        state.least_loaded_in(&au.union(&av))
    };
    if state.load[choice.index()] >= state.capacity() {
        state.least_loaded_all()
    } else {
        choice
    }
}

/// Oblivious's [`WindowKernel`]: same per-loader [`GreedyState`], scored
/// through the pure [`speculative::oblivious_score`] case analysis with
/// per-edge RNGs. Oblivious has no degree state, so the kernel needs no
/// shards — windows only freeze the replica sets and loads it scores
/// against.
struct ObliviousWindowKernel {
    greedy: GreedyState,
    seed: u64,
    /// Capacity cap as of the window start. The committed state is frozen
    /// during speculation, so the cache equals a per-edge recomputation.
    frozen_capacity: u64,
    parse_edge: f64,
    heuristic_base: f64,
    heuristic_per_candidate: f64,
}

impl ObliviousWindowKernel {
    fn new(ctx: &PartitionContext, num_vertices: u64, seed: u64) -> Self {
        ObliviousWindowKernel {
            greedy: GreedyState::new(ctx.num_partitions, num_vertices, seed),
            seed,
            frozen_capacity: 0,
            parse_edge: ctx.cost.parse_edge,
            heuristic_base: ctx.cost.heuristic_base,
            heuristic_per_candidate: ctx.cost.heuristic_per_candidate,
        }
    }

    #[inline]
    fn score_at(&self, e: Edge, idx: usize, capacity: u64) -> PartitionId {
        let mut rng = edge_rng(self.seed, idx);
        speculative::oblivious_score(
            &self.greedy.load,
            capacity,
            self.greedy.replicas(e.src),
            self.greedy.replicas(e.dst),
            &mut rng,
        )
    }
}

impl WindowKernel for ObliviousWindowKernel {
    fn partitions(&self) -> usize {
        self.greedy.load.len()
    }

    fn begin_window(&mut self) {
        self.frozen_capacity = self.greedy.capacity();
    }

    fn score_frozen(&self, e: Edge, idx: usize, _scratch: &mut ScoreScratch) -> PartitionId {
        self.score_at(e, idx, self.frozen_capacity)
    }

    fn score_live(&self, e: Edge, idx: usize, _scratch: &mut ScoreScratch) -> PartitionId {
        self.score_at(e, idx, self.greedy.capacity())
    }

    fn over_capacity(&self, p: PartitionId) -> bool {
        self.greedy.load[p.index()] >= self.greedy.capacity()
    }

    fn apply(&mut self, e: Edge, p: PartitionId) {
        let candidates = self.greedy.replicas(e.src).len() + self.greedy.replicas(e.dst).len();
        self.greedy.work += self.parse_edge
            + self.heuristic_base
            + self.heuristic_per_candidate * candidates as f64;
        self.greedy.commit(e, p);
    }

    fn work(&self) -> f64 {
        self.greedy.work
    }

    fn state_bytes(&self, num_vertices: u64, stats: &SpecStats) -> u64 {
        self.greedy.state_bytes() + stats.max_window * 20 + num_vertices * 4
    }
}

impl Oblivious {
    /// The `window >= 2` ingress path; see [`crate::speculative`].
    fn partition_windowed(
        &self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let (parts, loader_work, state_bytes, stats) =
            speculative::partition_windowed_blocks(graph, ctx, |i| {
                ObliviousWindowKernel::new(
                    ctx,
                    graph.num_vertices(),
                    ctx.seed ^ (0x0b11 + i as u64),
                )
            });
        let outcome = PartitionOutcome {
            assignment: Assignment::from_edge_partitions_par(
                graph,
                parts,
                ctx.num_partitions,
                ctx.seed,
                &ctx.par,
            ),
            loader_work,
            passes: 1,
            state_bytes,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        super::record_speculation_telemetry(ctx, &stats);
        outcome
    }
}

impl Partitioner for Oblivious {
    fn name(&self) -> &'static str {
        "Oblivious"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        if ctx.window >= 2 {
            return self.partition_windowed(graph, ctx);
        }
        let blocks = loader_ranges(graph.num_edges(), ctx.num_loaders);
        // Loaders are independent by design (each is "oblivious" to the
        // others), so they can run on real parallel threads. The determinism
        // unit is the *block* — block boundaries and per-block seeds depend
        // only on `num_loaders`, never on the thread count — so the bounded
        // ordered pool returns byte-identical results at any `--threads N`.
        let tasks: Vec<_> = blocks
            .into_iter()
            .enumerate()
            .map(|(i, block)| {
                move || {
                    let mut state = GreedyState::new(
                        ctx.num_partitions,
                        graph.num_vertices(),
                        ctx.seed ^ (0x0b11 + i as u64),
                    );
                    let mut parts = Vec::with_capacity(block.len());
                    for_each_edge(graph, block, |e| {
                        let candidates = state.replicas(e.src).len() + state.replicas(e.dst).len();
                        state.work += ctx.cost.parse_edge
                            + ctx.cost.heuristic_base
                            + ctx.cost.heuristic_per_candidate * candidates as f64;
                        let p = oblivious_choose(&mut state, e);
                        state.commit(e, p);
                        parts.push(p);
                    });
                    (parts, state.work, state.state_bytes())
                }
            })
            .collect();
        let results = gp_par::run_ordered(ctx.par.effective_threads(), tasks);
        let mut parts = Vec::with_capacity(graph.num_edges());
        let mut loader_work = Vec::with_capacity(results.len());
        let mut state_bytes = 0u64;
        for (block_parts, work, bytes) in results {
            parts.extend(block_parts);
            loader_work.push(work);
            state_bytes = state_bytes.max(bytes);
        }
        let outcome = PartitionOutcome {
            assignment: Assignment::from_edge_partitions_par(
                graph,
                parts,
                ctx.num_partitions,
                ctx.seed,
                &ctx.par,
            ),
            loader_work,
            passes: 1,
            state_bytes,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(p: u32) -> PartitionContext {
        PartitionContext::new(p)
    }

    fn centralized(p: u32) -> PartitionContext {
        PartitionContext::new(p).with_loaders(1)
    }

    #[test]
    fn case1_places_in_intersection() {
        let mut s = GreedyState::new(4, 128, 1);
        s.commit(Edge::new(0u64, 1u64), PartitionId(2));
        // Both 0 and 1 live on p2 only; the next (0,1)-ish edge must go there.
        let p = oblivious_choose(&mut s, Edge::new(0u64, 1u64));
        assert_eq!(p, PartitionId(2));
    }

    #[test]
    fn case2_follows_the_placed_endpoint() {
        let mut s = GreedyState::new(4, 128, 1);
        s.commit(Edge::new(0u64, 1u64), PartitionId(3));
        let p = oblivious_choose(&mut s, Edge::new(0u64, 9u64));
        assert_eq!(p, PartitionId(3), "new edge should join u's only replica");
    }

    #[test]
    fn case3_balances_fresh_edges() {
        let mut s = GreedyState::new(2, 128, 1);
        s.load = vec![5, 0];
        let p = oblivious_choose(&mut s, Edge::new(10u64, 11u64));
        assert_eq!(
            p,
            PartitionId(1),
            "fresh edge must go to the least-loaded machine"
        );
    }

    #[test]
    fn case4_uses_least_loaded_in_union() {
        let mut s = GreedyState::new(4, 128, 1);
        s.commit(Edge::new(0u64, 5u64), PartitionId(0));
        s.commit(Edge::new(1u64, 6u64), PartitionId(2));
        s.load[0] = 10; // make p2 the lighter of {0, 2}
        let p = oblivious_choose(&mut s, Edge::new(0u64, 1u64));
        assert_eq!(p, PartitionId(2));
    }

    #[test]
    fn oblivious_rf_beats_random_on_low_degree_graphs() {
        // §5.4.2: heuristics shine on low-degree graphs.
        let g = gp_gen::road_network(
            &gp_gen::RoadNetworkParams {
                width: 60,
                height: 60,
                ..Default::default()
            },
            3,
        );
        let ob = Oblivious
            .partition(&g, &centralized(9))
            .assignment
            .replication_factor();
        let rnd = crate::strategies::hash::Random
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(
            ob < rnd * 0.75,
            "oblivious {ob} should clearly beat random {rnd}"
        );
    }

    #[test]
    fn distributed_oblivious_is_worse_than_centralized() {
        // Per-loader state loses information — more loaders, higher RF.
        let g = gp_gen::barabasi_albert(8_000, 6, 2);
        let central = Oblivious
            .partition(&g, &centralized(8))
            .assignment
            .replication_factor();
        let dist = Oblivious
            .partition(&g, &PartitionContext::new(8).with_loaders(8))
            .assignment
            .replication_factor();
        assert!(
            dist >= central,
            "distributed {dist} vs centralized {central}"
        );
    }

    #[test]
    fn loads_stay_balanced() {
        let g = gp_gen::erdos_renyi(5_000, 60_000, 7);
        let out = Oblivious.partition(&g, &ctx(9));
        assert!(out.assignment.balance().imbalance < 1.25);
    }

    #[test]
    fn work_grows_with_replica_sets() {
        // A hub graph forces large A(v) scans; per-edge work should exceed a
        // road network's.
        let hub = gp_gen::barabasi_albert(4_000, 8, 1);
        let road = gp_gen::road_network(
            &gp_gen::RoadNetworkParams {
                width: 65,
                height: 65,
                ..Default::default()
            },
            1,
        );
        let ctx9 = centralized(9);
        let w_hub: f64 = Oblivious
            .partition(&hub, &ctx9)
            .loader_work
            .iter()
            .sum::<f64>()
            / hub.num_edges() as f64;
        let w_road: f64 = Oblivious
            .partition(&road, &ctx9)
            .loader_work
            .iter()
            .sum::<f64>()
            / road.num_edges() as f64;
        assert!(
            w_hub > w_road * 1.1,
            "per-edge work: hub {w_hub} should exceed road {w_road}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gp_gen::erdos_renyi(1_000, 8_000, 5);
        let a = Oblivious.partition(&g, &ctx(4));
        let b = Oblivious.partition(&g, &ctx(4));
        assert_eq!(
            a.assignment.edge_partitions(),
            b.assignment.edge_partitions()
        );
        let c = Oblivious.partition(&g, &PartitionContext::new(4).with_seed(99));
        assert_ne!(
            a.assignment.edge_partitions(),
            c.assignment.edge_partitions()
        );
    }

    #[test]
    fn state_bytes_are_reported() {
        let g = gp_gen::erdos_renyi(1_000, 5_000, 3);
        let out = Oblivious.partition(&g, &ctx(4));
        assert!(out.state_bytes > 0);
    }
}
