//! PowerLyra's Hybrid and Hybrid-Ginger strategies (§6.2).
//!
//! **Hybrid** differentiates by destination in-degree: edges whose
//! destination is *low-degree* are placed by hashing the **destination**
//! (edge-cut-like: a low-degree vertex keeps all its in-edges, and its
//! master, in one place), while edges whose destination is *high-degree* are
//! placed by hashing the **source** (vertex-cut-like: the hub's in-edges
//! spread over the cluster). Unlike HDRF, Hybrid uses *actual* degrees, which
//! takes a second "reassignment" pass over the data (§6.2.1); the default
//! degree threshold is 100, as in the paper.
//!
//! **Hybrid-Ginger** adds a third phase: a Fennel-inspired heuristic that
//! tries to move each low-degree vertex `v` to the partition holding most of
//! its in-neighbours, tempered by a load-balance term (§6.2.2):
//!
//! ```text
//! c(v, p) = |Ni(v) ∩ Vp| − b(p),   b(p) = ½(|Vp| + |V|/|E|·|Ep|)
//! ```
//!
//! The extra phases cost ingress time and memory — the overheads behind
//! Figs 6.3/6.4 — in exchange for a slightly better replication factor.

use crate::assignment::Assignment;
use crate::partitioner::{loader_chunks, PartitionContext, PartitionOutcome, Partitioner};
use crate::speculative::{sharded_degree_table, SpecStats, StampSet, WindowController};
use gp_core::{for_each_edge, hash_vertex, CsrGraph, Edge, PartitionId, StreamingEdges, VertexId};

/// The default high-degree threshold (θ) used by the paper (§6.2.1).
pub const DEFAULT_THRESHOLD: u32 = 100;

/// Hybrid's per-edge placement given the destination's in-degree: hash the
/// source for high-degree destinations (vertex-cut), hash the destination
/// for low-degree ones (edge-cut "home"). Shared by the batch second pass
/// (which uses *actual* degrees) and the incremental serving path (which
/// feeds *running* degrees — the documented approximation).
pub(crate) fn hybrid_edge(
    e: Edge,
    dst_in_degree: u32,
    threshold: u32,
    seed: u64,
    p: u64,
) -> PartitionId {
    if dst_in_degree > threshold {
        PartitionId((hash_vertex(e.src, seed) % p) as u32)
    } else {
        PartitionId((hash_vertex(e.dst, seed) % p) as u32)
    }
}

/// PowerLyra's Hybrid partitioner.
#[derive(Debug, Clone)]
pub struct Hybrid {
    /// In-degree above which a vertex is treated as high-degree.
    pub threshold: u32,
}

impl Default for Hybrid {
    fn default() -> Self {
        Hybrid {
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

impl Hybrid {
    /// Hybrid with a custom high-degree threshold.
    pub fn with_threshold(threshold: u32) -> Self {
        Hybrid { threshold }
    }

    /// Shared core: produce per-edge partitions plus the per-vertex "home"
    /// partition of low-degree vertices. Used by both Hybrid and
    /// Hybrid-Ginger (which then perturbs the homes).
    fn assign(
        &self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> (Vec<PartitionId>, Vec<PartitionId>, Vec<u32>) {
        let p = ctx.num_partitions as u64;
        let n = graph.num_vertices() as usize;
        // Pass 1: count actual in-degrees (and conceptually hash-assign)
        // via the shared sharded degree pass: thread-local `DegreeTable`
        // shards merged by elementwise addition — chunking-invariant, so
        // byte-identical at every thread count.
        let in_deg: Vec<u32> = sharded_degree_table(graph, &ctx.par).in_degrees().collect();
        debug_assert_eq!(in_deg.len(), n);
        // Vertex home = hash(v): where a low-degree vertex's in-edges (and
        // master) live.
        let homes: Vec<PartitionId> = gp_par::map_chunks(&ctx.par, n, |_, range| {
            range
                .map(|v| PartitionId((hash_vertex(VertexId(v as u64), ctx.seed) % p) as u32))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        // Pass 2: final placement using actual degrees (pure per-edge map;
        // `homes[dst]` is exactly `hash(dst) % p`, so this is `hybrid_edge`).
        let parts: Vec<PartitionId> =
            gp_par::map_chunks(&ctx.par, graph.num_edges(), |_, range| {
                let mut out = Vec::with_capacity(range.len());
                for_each_edge(graph, range, |e| {
                    out.push(hybrid_edge(
                        e,
                        in_deg[e.dst.index()],
                        self.threshold,
                        ctx.seed,
                        p,
                    ));
                });
                out
            })
            .into_iter()
            .flatten()
            .collect();
        (parts, homes, in_deg)
    }

    /// Masters: a vertex's master sits at its home partition when that
    /// partition holds a replica (always true for low-degree vertices with
    /// in-edges), otherwise at the first replica.
    fn masters(assignment: &Assignment, homes: &[PartitionId]) -> Vec<PartitionId> {
        homes
            .iter()
            .enumerate()
            .map(|(v, &home)| {
                let reps = assignment.replicas(VertexId(v as u64));
                if reps.is_empty() || reps.binary_search(&home.0).is_ok() {
                    home
                } else {
                    PartitionId(reps[0])
                }
            })
            .collect()
    }

    fn two_pass_work(graph: &dyn StreamingEdges, ctx: &PartitionContext) -> Vec<f64> {
        // Pass 1 (count) + pass 2 (reassign): both stream every edge.
        loader_chunks(graph.num_edges(), ctx.num_loaders)
            .into_iter()
            .map(|c| c as f64 * (2.0 * ctx.cost.parse_edge + 2.0 * ctx.cost.hash_assign))
            .collect()
    }

    fn base_state_bytes(graph: &dyn StreamingEdges, ctx: &PartitionContext) -> u64 {
        // Per-machine overhead of the multi-pass ingress (§6.4.2): the full
        // degree-counter table plus this loader's share of the edge stream,
        // buffered across the reassignment pass.
        graph.num_vertices() * 4 + graph.num_edges() as u64 * 16 / ctx.num_loaders as u64
    }
}

impl Partitioner for Hybrid {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let (parts, homes, _) = self.assign(graph, ctx);
        let mut assignment = Assignment::from_edge_partitions_par(
            graph,
            parts,
            ctx.num_partitions,
            ctx.seed,
            &ctx.par,
        );
        let masters = Self::masters(&assignment, &homes);
        assignment.set_masters(masters);
        let outcome = PartitionOutcome {
            assignment,
            loader_work: Self::two_pass_work(graph, ctx),
            passes: 2,
            state_bytes: Self::base_state_bytes(graph, ctx),
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

/// PowerLyra's Hybrid-Ginger partitioner.
#[derive(Debug, Clone)]
pub struct HybridGinger {
    /// In-degree above which a vertex is treated as high-degree.
    pub threshold: u32,
}

impl Default for HybridGinger {
    fn default() -> Self {
        HybridGinger {
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

impl HybridGinger {
    /// Hybrid-Ginger with a custom threshold.
    pub fn with_threshold(threshold: u32) -> Self {
        HybridGinger { threshold }
    }

    /// The Fennel-style score argmax for vertex `v`: the partition holding
    /// most of `v`'s in-neighbors, tempered by the balance term, with `v`
    /// discounted from its current partition. A pure function of the state
    /// it is handed — the sequential scan feeds it live state, the windowed
    /// path feeds it the window-start snapshot (and live state again on
    /// repair). Ginger draws no RNG, so identical inputs give identical
    /// choices.
    #[allow(clippy::too_many_arguments)]
    fn best_home(
        csr: &CsrGraph,
        homes: &[PartitionId],
        in_deg: &[u32],
        vcount: &[u64],
        ecount: &[u64],
        nv_over_ne: f64,
        p: usize,
        v: usize,
        affinity: &mut [u64],
    ) -> usize {
        affinity.iter_mut().for_each(|a| *a = 0);
        for u in csr.in_neighbors(VertexId(v as u64)) {
            affinity[homes[u.index()].index()] += 1;
        }
        let current = homes[v].index();
        let mut best = current;
        let mut best_score = f64::NEG_INFINITY;
        for cand in 0..p {
            // Score the partition as if v were not already counted there.
            let vc = vcount[cand] - u64::from(cand == current);
            let ec = ecount[cand] - if cand == current { in_deg[v] as u64 } else { 0 };
            let balance = 0.5 * (vc as f64 + nv_over_ne * ec as f64);
            let score = affinity[cand] as f64 - balance;
            if score > best_score {
                best_score = score;
                best = cand;
            }
        }
        best
    }

    /// Windowed speculative Ginger refinement: candidate vertices (low
    /// in-degree, in scan order) are cut into windows; workers propose
    /// moves against the window-start snapshot of homes and counts; a
    /// sequential walk commits them. A vertex is fully re-scored only when
    /// an in-neighbor's home moved earlier in the same window (its affinity
    /// inputs changed); otherwise the move gets an O(1) *live balance
    /// re-check* — the proposal carries its two relevant affinity values,
    /// so the walk can re-compare proposed-vs-current against the live
    /// counts without rescanning neighbors. That re-check is what stops a
    /// window's proposals from herding onto the partition that was lightest
    /// at the snapshot: each committed move raises the target's live
    /// balance term until later movers stay put. Moves, not visits, mark
    /// the stamp — an unmoved neighbor invalidates nothing.
    #[allow(clippy::too_many_arguments)]
    fn refine_windowed(
        &self,
        csr: &CsrGraph,
        homes: &mut [PartitionId],
        in_deg: &[u32],
        vcount: &mut [u64],
        ecount: &mut [u64],
        nv_over_ne: f64,
        p: usize,
        ctx: &PartitionContext,
        ginger_work: &mut f64,
        stats: &mut SpecStats,
    ) {
        let n = homes.len();
        let cands: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let d = in_deg[v as usize];
                d > 0 && d <= self.threshold
            })
            .collect();
        let mut stamp = StampSet::new(n);
        let mut affinity = vec![0u64; p];
        // Windows are cut by the same controller as the edge-stream path:
        // fixed for `--window W`, adaptive for `--window auto` — either way
        // a pure function of the candidate stream, never the thread count.
        let mut ctl = WindowController::new(ctx.window);
        let mut start = 0usize;
        while start < cands.len() {
            let end = (start + ctl.current()).min(cands.len());
            let wrange = start..end;
            let homes_snap: &[PartitionId] = homes;
            let vcount_snap: &[u64] = vcount;
            let ecount_snap: &[u64] = ecount;
            // (proposed, affinity[proposed], affinity[current]) per vertex.
            let proposals: Vec<(usize, u64, u64)> =
                gp_par::map_chunks(&ctx.par, wrange.len(), |_, r| {
                    let mut aff = vec![0u64; p];
                    let mut out = Vec::with_capacity(r.len());
                    for k in r {
                        let v = cands[wrange.start + k] as usize;
                        let best = Self::best_home(
                            csr,
                            homes_snap,
                            in_deg,
                            vcount_snap,
                            ecount_snap,
                            nv_over_ne,
                            p,
                            v,
                            &mut aff,
                        );
                        out.push((best, aff[best], aff[homes_snap[v].index()]));
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect();
            stamp.advance();
            let mut repaired_here = 0u64;
            for (k, &(proposed, aff_prop, aff_cur)) in proposals.iter().enumerate() {
                let v = cands[wrange.start + k] as usize;
                *ginger_work +=
                    ctx.cost.ginger_base + ctx.cost.ginger_per_neighbor * in_deg[v] as f64;
                let conflict = csr
                    .in_neighbors(VertexId(v as u64))
                    .any(|u| stamp.contains(u));
                let best = if conflict {
                    repaired_here += 1;
                    Self::best_home(
                        csr,
                        homes,
                        in_deg,
                        vcount,
                        ecount,
                        nv_over_ne,
                        p,
                        v,
                        &mut affinity,
                    )
                } else {
                    stats.speculated += 1;
                    let current = homes[v].index();
                    if proposed == current {
                        current
                    } else {
                        // Live balance re-check, same discounting as
                        // `best_home` (v removed from its current home,
                        // strict improvement required to move).
                        let score_prop = aff_prop as f64
                            - 0.5
                                * (vcount[proposed] as f64 + nv_over_ne * ecount[proposed] as f64);
                        let score_cur = aff_cur as f64
                            - 0.5
                                * ((vcount[current] - 1) as f64
                                    + nv_over_ne * (ecount[current] - in_deg[v] as u64) as f64);
                        if score_prop > score_cur {
                            proposed
                        } else {
                            current
                        }
                    }
                };
                let current = homes[v].index();
                if best != current {
                    vcount[current] -= 1;
                    vcount[best] += 1;
                    ecount[current] -= in_deg[v] as u64;
                    ecount[best] += in_deg[v] as u64;
                    homes[v] = PartitionId(best as u32);
                    stamp.mark(VertexId(v as u64));
                }
            }
            stats.windows += 1;
            stats.repaired += repaired_here;
            stats.max_window = stats.max_window.max(wrange.len() as u64);
            ctl.observe(wrange.len(), repaired_here, stats);
            start = end;
        }
    }
}

impl Partitioner for HybridGinger {
    fn name(&self) -> &'static str {
        "H-Ginger"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let hybrid = Hybrid::with_threshold(self.threshold);
        let (_, mut homes, in_deg) = hybrid.assign(graph, ctx);
        let p = ctx.num_partitions as usize;
        let n = graph.num_vertices() as usize;
        let m = graph.num_edges() as f64;

        // Phase 3: Ginger refinement of low-degree vertex homes.
        let csr = CsrGraph::from_source(graph);
        let mut vcount = vec![0u64; p]; // vertices per partition
        let mut ecount = vec![0u64; p]; // in-edges homed per partition
        for v in 0..n {
            vcount[homes[v].index()] += 1;
            if in_deg[v] <= self.threshold {
                ecount[homes[v].index()] += in_deg[v] as u64;
            }
        }
        let nv_over_ne = if m > 0.0 { n as f64 / m } else { 0.0 };
        let mut ginger_work = 0.0f64;
        let mut stats = SpecStats::default();
        if ctx.window >= 2 {
            // Windowed speculative refinement — see `crate::speculative`.
            self.refine_windowed(
                &csr,
                &mut homes,
                &in_deg,
                &mut vcount,
                &mut ecount,
                nv_over_ne,
                p,
                ctx,
                &mut ginger_work,
                &mut stats,
            );
        } else {
            // Sequential scan: mutates shared vcount/ecount/homes state as
            // it goes, so its result depends on scan order by design.
            let mut affinity = vec![0u64; p];
            for v in 0..n {
                if in_deg[v] > self.threshold || in_deg[v] == 0 {
                    continue;
                }
                ginger_work +=
                    ctx.cost.ginger_base + ctx.cost.ginger_per_neighbor * in_deg[v] as f64;
                let current = homes[v].index();
                let best = Self::best_home(
                    &csr,
                    &homes,
                    &in_deg,
                    &vcount,
                    &ecount,
                    nv_over_ne,
                    p,
                    v,
                    &mut affinity,
                );
                if best != current {
                    vcount[current] -= 1;
                    vcount[best] += 1;
                    ecount[current] -= in_deg[v] as u64;
                    ecount[best] += in_deg[v] as u64;
                    homes[v] = PartitionId(best as u32);
                }
            }
        }

        // Re-emit edge partitions with the refined homes (pure map; the
        // Ginger refinement itself stays sequential — it mutates shared
        // vcount/ecount/homes state as it scans, so its result depends on
        // scan order by design).
        let p64 = ctx.num_partitions as u64;
        let parts: Vec<PartitionId> =
            gp_par::map_chunks(&ctx.par, graph.num_edges(), |_, range| {
                let mut out = Vec::with_capacity(range.len());
                for_each_edge(graph, range, |e| {
                    out.push(if in_deg[e.dst.index()] > self.threshold {
                        PartitionId((hash_vertex(e.src, ctx.seed) % p64) as u32)
                    } else {
                        homes[e.dst.index()]
                    });
                });
                out
            })
            .into_iter()
            .flatten()
            .collect();
        let mut assignment = Assignment::from_edge_partitions_par(
            graph,
            parts,
            ctx.num_partitions,
            ctx.seed,
            &ctx.par,
        );
        let masters = Hybrid::masters(&assignment, &homes);
        assignment.set_masters(masters);

        // Work: Hybrid's two passes + a third full scan (parallel across
        // loaders) + the heuristic itself, whose serial refinement is not
        // loader-parallel (PowerLyra runs it as an extra coordination
        // phase) — charged to one loader to model the straggler.
        let mut loader_work = Hybrid::two_pass_work(graph, ctx);
        let third_pass_each =
            graph.num_edges() as f64 * ctx.cost.parse_edge / ctx.num_loaders as f64;
        for w in loader_work.iter_mut() {
            *w += third_pass_each;
        }
        if let Some(w) = loader_work.first_mut() {
            *w += ginger_work;
        }
        // State: Hybrid's buffers plus this loader's share of the in-neighbor
        // adjacency built for the heuristic phase, plus per-vertex homes.
        let state_bytes = Hybrid::base_state_bytes(graph, ctx)
            + graph.num_edges() as u64 * 8 / ctx.num_loaders as u64
            + graph.num_vertices() * 8;
        let outcome = PartitionOutcome {
            assignment,
            loader_work,
            passes: 3,
            state_bytes,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        super::record_speculation_telemetry(ctx, &stats);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::hash::Random;
    use crate::strategies::oblivious::Oblivious;
    use gp_core::EdgeList;

    fn ctx(p: u32) -> PartitionContext {
        PartitionContext::new(p)
    }

    /// A graph with one obvious hub and many low-degree vertices.
    fn hub_and_chain() -> EdgeList {
        let mut pairs: Vec<(u64, u64)> = (1..=300).map(|i| (i, 0)).collect(); // hub in-degree 300
        pairs.extend((301..400).map(|i| (i, i + 1))); // low-degree chain
        EdgeList::from_pairs(pairs)
    }

    #[test]
    fn low_degree_in_edges_are_colocated_with_master() {
        let g = hub_and_chain();
        let out = Hybrid::default().partition(&g, &ctx(8));
        let a = &out.assignment;
        // Chain vertices have in-degree 1 <= 100: their single in-edge lives
        // at their master.
        for (i, e) in g.edges().iter().enumerate() {
            if e.dst.0 >= 302 {
                assert_eq!(
                    a.edge_partition(i),
                    a.master_of(e.dst),
                    "low-degree in-edge must sit at the destination's master"
                );
            }
        }
    }

    #[test]
    fn hub_in_edges_are_spread_by_source() {
        let g = hub_and_chain();
        let out = Hybrid::default().partition(&g, &ctx(8));
        // The hub (in-degree 300 > 100) should be replicated widely.
        assert!(
            out.assignment.replica_count(VertexId(0)) >= 6,
            "hub replicas: {}",
            out.assignment.replica_count(VertexId(0))
        );
    }

    #[test]
    fn threshold_controls_differentiation() {
        let g = hub_and_chain();
        // With an enormous threshold every vertex is low-degree → pure
        // destination hashing → hub has exactly 1 replica... as destination.
        let out = Hybrid::with_threshold(1_000_000).partition(&g, &ctx(8));
        assert_eq!(out.assignment.replicas(VertexId(0)).len(), 1);
    }

    #[test]
    fn hybrid_reports_two_passes_and_buffer_state() {
        let g = hub_and_chain();
        let out = Hybrid::default().partition(&g, &ctx(4));
        assert_eq!(out.passes, 2);
        assert!(out.state_bytes > g.num_edges() as u64 * 8);
    }

    #[test]
    fn ginger_reports_three_passes_and_more_state() {
        let g = hub_and_chain();
        let h = Hybrid::default().partition(&g, &ctx(4));
        let hg = HybridGinger::default().partition(&g, &ctx(4));
        assert_eq!(hg.passes, 3);
        assert!(hg.state_bytes > h.state_bytes);
        let h_work: f64 = h.loader_work.iter().sum();
        let hg_work: f64 = hg.loader_work.iter().sum();
        assert!(hg_work > h_work, "Ginger must cost more ingress work");
    }

    #[test]
    fn ginger_rf_not_worse_than_hybrid() {
        // §6.4.4: slightly better replication factor than Hybrid.
        let g = gp_gen::barabasi_albert(10_000, 8, 3);
        let h = Hybrid::default()
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        let hg = HybridGinger::default()
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(
            hg <= h * 1.02,
            "Ginger {hg} should not be worse than Hybrid {h}"
        );
    }

    #[test]
    fn hybrid_beats_random_on_heavy_tailed() {
        let g = gp_gen::barabasi_albert(10_000, 8, 6);
        let h = Hybrid::default()
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        let r = Random
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(h < r, "Hybrid {h} vs Random {r}");
    }

    #[test]
    fn oblivious_beats_hybrid_on_low_degree_graphs() {
        // §6.4.4: "Oblivious is a better choice for low-degree graphs".
        let g = gp_gen::road_network(
            &gp_gen::RoadNetworkParams {
                width: 60,
                height: 60,
                ..Default::default()
            },
            4,
        );
        let ob = Oblivious
            .partition(&g, &PartitionContext::new(9).with_loaders(1))
            .assignment
            .replication_factor();
        let h = Hybrid::default()
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(ob < h, "Oblivious {ob} vs Hybrid {h}");
    }

    #[test]
    fn masters_are_valid_replicas() {
        let g = hub_and_chain();
        for out in [
            Hybrid::default().partition(&g, &ctx(8)),
            HybridGinger::default().partition(&g, &ctx(8)),
        ] {
            for v in 0..g.num_vertices() {
                let v = VertexId(v);
                if out.assignment.replica_count(v) > 0 {
                    assert!(out
                        .assignment
                        .replicas(v)
                        .contains(&out.assignment.master_of(v).0));
                }
            }
        }
    }

    #[test]
    fn ginger_moves_chain_vertices_toward_neighbors() {
        // A long path: Ginger should pull adjacent vertices into the same
        // partition more often than raw hashing does.
        let g = EdgeList::from_pairs((0..2_000).map(|i| (i, i + 1)).collect());
        let h = Hybrid::default().partition(&g, &ctx(4));
        let hg = HybridGinger::default().partition(&g, &ctx(4));
        let cut = |a: &Assignment| -> usize {
            (0..g.num_edges() - 1)
                .filter(|&i| a.edge_partition(i) != a.edge_partition(i + 1))
                .count()
        };
        assert!(
            cut(&hg.assignment) < cut(&h.assignment),
            "Ginger should reduce adjacent-edge splits: {} vs {}",
            cut(&hg.assignment),
            cut(&h.assignment)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gp_gen::barabasi_albert(3_000, 5, 8);
        let a = HybridGinger::default().partition(&g, &ctx(4));
        let b = HybridGinger::default().partition(&g, &ctx(4));
        assert_eq!(
            a.assignment.edge_partitions(),
            b.assignment.edge_partitions()
        );
    }
}
