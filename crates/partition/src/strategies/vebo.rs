//! VEBO — a vertex- and edge-balanced ordering partitioner.
//!
//! VEBO (Vertex reordering for Edge Balanced Ordering; PAPERS.md) makes the
//! case that *layout*, not partitioning math, is what bounds parallel graph
//! processing: place vertices so that every partition receives both an equal
//! share of vertices and an equal share of edges, and the partitioning
//! itself can stay embarrassingly parallel. Our adaptation is a 1D-style
//! owner partitioner with a degree-driven placement pass instead of a hash:
//!
//! 1. **Degree pass** — the sharded parallel degree count
//!    ([`crate::speculative::sharded_degree_table`], ordered shard merge).
//! 2. **Ordering pass** — vertices sorted by (out-degree desc, in-degree
//!    desc, id asc) and placed LPT-style (longest-processing-time first)
//!    onto the partition with the lightest owned-edge load, ties by vertex
//!    count then index. Sorting hubs first is what lets the greedy bin-pack
//!    land within one hub of perfect edge balance while keeping vertex
//!    counts within one of each other.
//! 3. **Edge pass** — every edge goes to its source's owner (1D placement
//!    on the computed owner table; a pure parallel map). Masters sit at the
//!    owner, so low-degree vertices keep master and out-edges co-located.
//!
//! The result is *ordering-invariant*: permuting vertex ids permutes the
//! degree multiset but not the sorted degree sequence, so the LPT evolution
//! — and with it the per-partition vertex/edge-count vectors — is exactly
//! preserved (property-tested in `tests/par_equivalence.rs`).

use crate::assignment::Assignment;
use crate::partitioner::{loader_chunks, PartitionContext, PartitionOutcome, Partitioner};
use crate::speculative::sharded_degree_table;
use gp_core::{for_each_edge, PartitionId, StreamingEdges, VertexId};

/// The VEBO-style vertex/edge-balanced ordering partitioner.
#[derive(Debug, Default, Clone)]
pub struct Vebo;

impl Partitioner for Vebo {
    fn name(&self) -> &'static str {
        "VEBO"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions as usize;
        let n = graph.num_vertices() as usize;
        // Pass 1: parallel sharded degree count (thread-count invariant).
        let degrees = sharded_degree_table(graph, &ctx.par);
        // Pass 2 (ordering): hubs first, then LPT bin-packing on owned
        // out-edges. Keys are total orders (ids break every tie), so the
        // sort needs no stability and the placement is deterministic.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let vid = VertexId(v as u64);
            (
                std::cmp::Reverse(degrees.out_degree(vid)),
                std::cmp::Reverse(degrees.in_degree(vid)),
                v,
            )
        });
        let mut owner = vec![PartitionId(0); n];
        let mut eload = vec![0u64; p];
        let mut vcount = vec![0u64; p];
        for &v in &order {
            let mut best = 0usize;
            for c in 1..p {
                if (eload[c], vcount[c], c) < (eload[best], vcount[best], best) {
                    best = c;
                }
            }
            owner[v as usize] = PartitionId(best as u32);
            eload[best] += degrees.out_degree(VertexId(v as u64)) as u64;
            vcount[best] += 1;
        }
        // Pass 3: every edge to its source's owner (pure parallel map,
        // concatenated in chunk order).
        let parts: Vec<PartitionId> =
            gp_par::map_chunks(&ctx.par, graph.num_edges(), |_, range| {
                let mut out = Vec::with_capacity(range.len());
                for_each_edge(graph, range, |e| out.push(owner[e.src.index()]));
                out
            })
            .into_iter()
            .flatten()
            .collect();
        let mut assignment = Assignment::from_edge_partitions_par(
            graph,
            parts,
            ctx.num_partitions,
            ctx.seed,
            &ctx.par,
        );
        // Masters at the owner when it holds a replica (always true for
        // vertices with out-edges), else the first replica.
        let masters: Vec<PartitionId> = owner
            .iter()
            .enumerate()
            .map(|(v, &home)| {
                let reps = assignment.replicas(VertexId(v as u64));
                if reps.is_empty() || reps.binary_search(&home.0).is_ok() {
                    home
                } else {
                    PartitionId(reps[0])
                }
            })
            .collect();
        assignment.set_masters(masters);
        // Work: two streaming passes per loader (count + place), plus the
        // ordering pass — sort and LPT run centrally, charged to loader 0
        // like Ginger's refinement phase.
        let mut loader_work: Vec<f64> = loader_chunks(graph.num_edges(), ctx.num_loaders)
            .into_iter()
            .map(|c| c as f64 * (2.0 * ctx.cost.parse_edge + ctx.cost.hash_assign))
            .collect();
        if let Some(w) = loader_work.first_mut() {
            *w += n as f64 * ctx.cost.heuristic_base;
        }
        let outcome = PartitionOutcome {
            assignment,
            loader_work,
            passes: 2,
            // Degree table (8B/vertex) + owner table (4B) + sort keys (4B).
            state_bytes: graph.num_vertices() * 16,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(p: u32) -> PartitionContext {
        PartitionContext::new(p)
    }

    #[test]
    fn edge_loads_are_near_perfectly_balanced() {
        // LPT on out-degrees: a power-law graph still lands within a hair
        // of perfect edge balance because hubs are placed first.
        let g = gp_gen::barabasi_albert(20_000, 8, 3);
        let out = Vebo.partition(&g, &ctx(9));
        assert!(
            out.assignment.balance().imbalance < 1.05,
            "imbalance {}",
            out.assignment.balance().imbalance
        );
    }

    #[test]
    fn vertex_counts_differ_by_at_most_a_hub() {
        let g = gp_gen::barabasi_albert(9_000, 6, 5);
        let out = Vebo.partition(&g, &ctx(9));
        let masters = out.assignment.master_counts();
        let (mx, mn) = (
            *masters.iter().max().unwrap(),
            *masters.iter().min().unwrap(),
        );
        // Vertex-balanced side of the objective: master counts stay tight.
        assert!(mx - mn <= g.num_vertices() / 100, "masters {masters:?}");
    }

    #[test]
    fn all_src_edges_are_colocated() {
        let g = gp_gen::erdos_renyi(2_000, 16_000, 9);
        let out = Vebo.partition(&g, &ctx(7));
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(
                out.assignment.edge_partition(i),
                out.assignment.master_of(e.src),
                "an out-edge must sit at its source's owner"
            );
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = gp_gen::erdos_renyi(100, 500, 1);
        let out = Vebo.partition(&g, &ctx(1));
        assert_eq!(out.assignment.edge_counts(), &[g.num_edges() as u64]);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = gp_gen::barabasi_albert(3_000, 5, 2);
        let base = Vebo.partition(&g, &ctx(9));
        for threads in [2u32, 4, 7] {
            let out = Vebo.partition(&g, &ctx(9).with_threads(threads));
            assert_eq!(
                base.assignment.edge_partitions(),
                out.assignment.edge_partitions(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = gp_core::EdgeList::from_pairs(Vec::new());
        let out = Vebo.partition(&g, &ctx(4));
        assert_eq!(out.assignment.num_edges(), 0);
    }
}
