//! Stateless hash partitioners: Random (canonical), Asymmetric Random,
//! 1D, 1D-Target and 2D.
//!
//! These are GraphX's whole strategy set (§7.2) — "hash-based and stateless
//! (they assign each edge independent of previous assignments), making them
//! highly parallelizable streaming graph partitioning strategies" — plus the
//! thesis's 1D-Target variant (§8.2.3).

use crate::assignment::assign_stateless_par;
use crate::partitioner::{PartitionContext, PartitionOutcome, Partitioner};
use crate::strategies::stateless_loader_work;
use gp_core::{
    hash_canonical_edge, hash_directed_edge, hash_vertex, Edge, PartitionId, StreamingEdges,
};

// Per-edge assignment formulas, shared by the batch partitioners below and
// the incremental (serving-time) path in `crate::incremental` — one function
// per strategy, so batch and incremental placements are identical by
// construction rather than by parallel maintenance.

/// Canonical Random: hash of the undirected edge.
pub(crate) fn random_edge(e: Edge, seed: u64, p: u32) -> PartitionId {
    PartitionId((hash_canonical_edge(e.src, e.dst, seed) % p as u64) as u32)
}

/// Asymmetric Random: hash of the directed edge.
pub(crate) fn asym_random_edge(e: Edge, seed: u64, p: u32) -> PartitionId {
    PartitionId((hash_directed_edge(e.src, e.dst, seed) % p as u64) as u32)
}

/// 1D: hash of the source vertex.
pub(crate) fn one_d_edge(e: Edge, seed: u64, p: u32) -> PartitionId {
    PartitionId((hash_vertex(e.src, seed) % p as u64) as u32)
}

/// 1D-Target: hash of the destination vertex.
pub(crate) fn one_d_target_edge(e: Edge, seed: u64, p: u32) -> PartitionId {
    PartitionId((hash_vertex(e.dst, seed) % p as u64) as u32)
}

/// 2D: source hash picks the column, destination hash the row, folded back
/// modulo `p` for non-square counts. `side` must be `TwoD::side(p)`.
pub(crate) fn two_d_edge(e: Edge, seed: u64, p: u32, side: u64) -> PartitionId {
    let col = hash_vertex(e.src, seed) % side;
    let row = hash_vertex(e.dst, seed ^ 0x2D2D) % side;
    PartitionId(((col * side + row) % p as u64) as u32)
}

/// PowerGraph's `Random` / GraphX's `CanonicalRandomVertexCut` (§5.2.1,
/// §7.2.1): hash of the edge ignoring direction, so `(u,v)` and `(v,u)`
/// land on the same partition.
#[derive(Debug, Default, Clone)]
pub struct Random;

impl Partitioner for Random {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions;
        let assignment = assign_stateless_par(graph, p, ctx.seed, &ctx.par, |e| {
            random_edge(e, ctx.seed, p)
        });
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

/// GraphX's `RandomVertexCut` — "Asymmetric Random" in the thesis (§8.1):
/// hash of the *directed* edge, so `(u,v)` and `(v,u)` may land on different
/// partitions. §8.2.2 shows this yields strictly worse replication factors
/// than canonical Random; we reproduce that.
#[derive(Debug, Default, Clone)]
pub struct AsymmetricRandom;

impl Partitioner for AsymmetricRandom {
    fn name(&self) -> &'static str {
        "Assym-Rand"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions;
        let assignment = assign_stateless_par(graph, p, ctx.seed, &ctx.par, |e| {
            asym_random_edge(e, ctx.seed, p)
        });
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

/// GraphX's 1D edge partitioning (§7.2.2): hash by **source** vertex, so all
/// out-edges of a vertex are co-located.
#[derive(Debug, Default, Clone)]
pub struct OneD;

impl Partitioner for OneD {
    fn name(&self) -> &'static str {
        "1D"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions;
        let assignment =
            assign_stateless_par(graph, p, ctx.seed, &ctx.par, |e| one_d_edge(e, ctx.seed, p));
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

/// The thesis's new 1D variant (§8.2.3): hash by **target** vertex, so all
/// *in*-edges are co-located. Under PowerLyra's hybrid engine this matches
/// the gather direction of natural applications (PageRank gathers along
/// in-edges) and cuts gather-phase network traffic — Fig 8.3.
#[derive(Debug, Default, Clone)]
pub struct OneDTarget;

impl Partitioner for OneDTarget {
    fn name(&self) -> &'static str {
        "1D-Target"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions;
        let assignment = assign_stateless_par(graph, p, ctx.seed, &ctx.par, |e| {
            one_d_target_edge(e, ctx.seed, p)
        });
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

/// GraphX's 2D edge partitioning (§7.2.3): arrange partitions in a
/// `ceil(sqrt(P))²` matrix, pick the column from the source hash and the row
/// from the destination hash, then map back down modulo `P` when `P` is not
/// a perfect square. Guarantees a `2*sqrt(P) - 1` replication upper bound
/// (for perfect squares).
#[derive(Debug, Default, Clone)]
pub struct TwoD;

impl TwoD {
    /// Matrix side used for `p` partitions.
    pub fn side(p: u32) -> u32 {
        (p as f64).sqrt().ceil() as u32
    }
}

impl Partitioner for TwoD {
    fn name(&self) -> &'static str {
        "2D"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let p = ctx.num_partitions;
        let side = Self::side(p) as u64;
        let assignment = assign_stateless_par(graph, p, ctx.seed, &ctx.par, |e| {
            two_d_edge(e, ctx.seed, p, side)
        });
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes: 1,
            state_bytes: 0,
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::{Edge, EdgeList, VertexId};

    fn graph_with_reversals() -> EdgeList {
        // Every edge and its reversal.
        let mut pairs = Vec::new();
        for i in 0..500u64 {
            let (u, v) = (i, (i * 7 + 3) % 997);
            if u != v {
                pairs.push((u, v));
                pairs.push((v, u));
            }
        }
        EdgeList::from_pairs(pairs)
    }

    fn ctx(p: u32) -> PartitionContext {
        PartitionContext::new(p)
    }

    #[test]
    fn random_places_reversed_edges_together() {
        let g = graph_with_reversals();
        let out = Random.partition(&g, &ctx(8));
        for i in (0..g.num_edges()).step_by(2) {
            assert_eq!(
                out.assignment.edge_partition(i),
                out.assignment.edge_partition(i + 1),
                "edge {i} and its reversal split"
            );
        }
    }

    #[test]
    fn asymmetric_random_splits_some_reversed_edges() {
        let g = graph_with_reversals();
        let out = AsymmetricRandom.partition(&g, &ctx(8));
        let split = (0..g.num_edges())
            .step_by(2)
            .filter(|&i| out.assignment.edge_partition(i) != out.assignment.edge_partition(i + 1))
            .count();
        assert!(split > 100, "expected many split pairs, got {split}");
    }

    #[test]
    fn asymmetric_rf_exceeds_canonical_rf_on_symmetric_graphs() {
        // §8.2.2: Asymmetric Random yields higher replication factors.
        let g = graph_with_reversals();
        let rf_canon = Random
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        let rf_asym = AsymmetricRandom
            .partition(&g, &ctx(9))
            .assignment
            .replication_factor();
        assert!(
            rf_asym > rf_canon,
            "asym {rf_asym} should exceed canonical {rf_canon}"
        );
    }

    #[test]
    fn one_d_colocates_out_edges() {
        let g = EdgeList::from_pairs((1..50).map(|i| (7, i)).collect());
        let out = OneD.partition(&g, &ctx(6));
        let first = out.assignment.edge_partition(0);
        assert!((0..g.num_edges()).all(|i| out.assignment.edge_partition(i) == first));
        assert_eq!(out.assignment.replica_count(VertexId(7)), 1);
    }

    #[test]
    fn one_d_target_colocates_in_edges() {
        let g = EdgeList::from_pairs((1..50).map(|i| (i, 7)).collect());
        let out = OneDTarget.partition(&g, &ctx(6));
        let first = out.assignment.edge_partition(0);
        assert!((0..g.num_edges()).all(|i| out.assignment.edge_partition(i) == first));
        assert_eq!(out.assignment.replica_count(VertexId(7)), 1);
    }

    #[test]
    fn two_d_respects_replication_upper_bound() {
        // 2*sqrt(P)-1 bound for perfect-square P (§7.2.3).
        let g = gp_gen::barabasi_albert(5_000, 8, 3);
        let p = 16u32;
        let out = TwoD.partition(&g, &ctx(p));
        let bound = 2 * TwoD::side(p) - 1;
        for v in 0..g.num_vertices() {
            assert!(
                out.assignment.replica_count(VertexId(v)) <= bound,
                "v{v} exceeds 2sqrt(P)-1"
            );
        }
    }

    #[test]
    fn two_d_handles_non_square_partition_counts() {
        let g = gp_gen::erdos_renyi(2_000, 10_000, 5);
        let out = TwoD.partition(&g, &ctx(10));
        // All partitions in range and all used.
        let counts = out.assignment.edge_counts();
        assert_eq!(counts.len(), 10);
        assert!(
            counts.iter().all(|&c| c > 0),
            "unused partition: {counts:?}"
        );
    }

    #[test]
    fn stateless_strategies_have_balanced_edge_loads() {
        let g = gp_gen::erdos_renyi(5_000, 100_000, 8);
        for (name, out) in [
            ("random", Random.partition(&g, &ctx(9))),
            ("asym", AsymmetricRandom.partition(&g, &ctx(9))),
        ] {
            let b = out.assignment.balance();
            assert!(b.imbalance < 1.1, "{name} imbalance {}", b.imbalance);
        }
    }

    #[test]
    fn one_d_balance_suffers_on_power_law_graphs() {
        // A hub's out-edges all pile onto one partition.
        let mut pairs: Vec<(u64, u64)> = (1..2_000).map(|i| (0, i)).collect();
        pairs.extend((1..500).map(|i| (i, i + 1)));
        let g = EdgeList::from_pairs(pairs);
        let out = OneD.partition(&g, &ctx(8));
        assert!(out.assignment.balance().imbalance > 2.0);
    }

    #[test]
    fn different_seeds_change_assignments() {
        let g = gp_gen::erdos_renyi(500, 2_000, 2);
        let a = Random.partition(&g, &PartitionContext::new(4).with_seed(1));
        let b = Random.partition(&g, &PartitionContext::new(4).with_seed(2));
        assert_ne!(
            a.assignment.edge_partitions(),
            b.assignment.edge_partitions()
        );
    }

    #[test]
    fn single_edge_graph_works_everywhere() {
        let g = EdgeList::from_edges(vec![Edge::new(0u64, 1u64)]);
        for mut s in [
            Box::new(Random) as Box<dyn Partitioner>,
            Box::new(AsymmetricRandom),
            Box::new(OneD),
            Box::new(OneDTarget),
            Box::new(TwoD),
        ] {
            let out = s.partition(&g, &ctx(4));
            assert_eq!(out.assignment.num_edges(), 1);
            assert_eq!(out.assignment.replication_factor(), 1.0, "{}", s.name());
        }
    }

    #[test]
    fn loader_work_is_reported_per_loader() {
        let g = gp_gen::erdos_renyi(100, 1_000, 1);
        let out = Random.partition(&g, &PartitionContext::new(4).with_loaders(4));
        assert_eq!(out.loader_work.len(), 4);
        assert!(out.loader_work.iter().all(|&w| w > 0.0));
        assert_eq!(out.passes, 1);
    }
}
