//! Bipartite-oriented partitioning ("BiCut"), PowerLyra's extension for
//! bipartite graphs (Chen et al., APSys'14 — the paper's §2.2 notes
//! PowerLyra "has also been extended with strategies specifically catering
//! to bipartite graphs").
//!
//! Observation: real bipartite graphs (buyers×items, users×ads) are heavily
//! *unbalanced* — one side has orders of magnitude more vertices than the
//! other. Hashing edges by their **favorite-side** endpoint (the larger
//! side) gives every favorite-side vertex exactly one replica, an exact
//! edge-cut for the overwhelming majority of vertices, while only the small
//! side is replicated. General-purpose vertex-cuts cannot see this structure
//! and replicate both sides.

use crate::assignment::assign_stateless_par;
use crate::partitioner::{PartitionContext, PartitionOutcome, Partitioner};
use crate::strategies::stateless_loader_work;
use gp_core::{for_each_edge, hash_vertex, PartitionId, StreamingEdges, VertexId};
use gp_par::ParConfig;

/// Which side of the bipartite graph to co-locate (the "favorite" side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FavoriteSide {
    /// Hash by source endpoint (sources are the big side).
    Source,
    /// Hash by destination endpoint (destinations are the big side).
    Target,
    /// Pick automatically: the side with more distinct endpoint vertices.
    Auto,
}

/// Bipartite-oriented edge partitioner.
#[derive(Debug, Clone)]
pub struct BiCut {
    /// Which side is the favorite.
    pub favorite: FavoriteSide,
}

impl Default for BiCut {
    fn default() -> Self {
        BiCut {
            favorite: FavoriteSide::Auto,
        }
    }
}

/// BiCut's per-edge assignment for a **resolved** favorite side (not
/// `Auto`) — shared by the batch path and the incremental serving path,
/// which resolves `Auto` against the base snapshot once and freezes it.
pub(crate) fn bicut_edge(e: gp_core::Edge, side: FavoriteSide, seed: u64, p: u64) -> PartitionId {
    let key = match side {
        FavoriteSide::Source => e.src,
        FavoriteSide::Target => e.dst,
        FavoriteSide::Auto => unreachable!("favorite side must be resolved before assignment"),
    };
    PartitionId((hash_vertex(key, seed) % p) as u32)
}

impl BiCut {
    /// BiCut with an explicit favorite side.
    pub fn new(favorite: FavoriteSide) -> Self {
        BiCut { favorite }
    }

    /// Auto-detection: count distinct sources vs distinct destinations.
    /// Parallel chunks produce per-chunk endpoint bitsets merged by OR —
    /// order-independent, so the verdict never depends on the thread count.
    fn detect(graph: &dyn StreamingEdges, par: &ParConfig) -> FavoriteSide {
        let n = graph.num_vertices() as usize;
        let shards = gp_par::map_chunks(par, graph.num_edges(), |_, range| {
            let mut is_src = vec![false; n];
            let mut is_dst = vec![false; n];
            for_each_edge(graph, range, |e| {
                is_src[e.src.index()] = true;
                is_dst[e.dst.index()] = true;
            });
            (is_src, is_dst)
        });
        let mut is_src = vec![false; n];
        let mut is_dst = vec![false; n];
        for (shard_src, shard_dst) in shards {
            for (b, s) in is_src.iter_mut().zip(shard_src) {
                *b |= s;
            }
            for (b, s) in is_dst.iter_mut().zip(shard_dst) {
                *b |= s;
            }
        }
        let sources = is_src.iter().filter(|&&b| b).count();
        let dests = is_dst.iter().filter(|&&b| b).count();
        if sources >= dests {
            FavoriteSide::Source
        } else {
            FavoriteSide::Target
        }
    }
}

impl Partitioner for BiCut {
    fn name(&self) -> &'static str {
        "BiCut"
    }

    fn partition(
        &mut self,
        graph: &dyn StreamingEdges,
        ctx: &PartitionContext,
    ) -> PartitionOutcome {
        let side = match self.favorite {
            FavoriteSide::Auto => Self::detect(graph, &ctx.par),
            explicit => explicit,
        };
        let p = ctx.num_partitions as u64;
        let mut assignment =
            assign_stateless_par(graph, ctx.num_partitions, ctx.seed, &ctx.par, |e| {
                bicut_edge(e, side, ctx.seed, p)
            });
        // Favorite-side vertices have exactly one replica; pin their master
        // there so the engine gathers locally.
        let masters = (0..graph.num_vertices())
            .map(|v| {
                let v = VertexId(v);
                let reps = assignment.replicas(v);
                if reps.len() == 1 {
                    PartitionId(reps[0])
                } else {
                    assignment.master_of(v)
                }
            })
            .collect();
        assignment.set_masters(masters);
        // Auto-detection adds a counting pass.
        let passes = if self.favorite == FavoriteSide::Auto {
            2
        } else {
            1
        };
        let outcome = PartitionOutcome {
            assignment,
            loader_work: stateless_loader_work(graph.num_edges(), ctx),
            passes,
            state_bytes: if passes == 2 {
                graph.num_vertices() / 4
            } else {
                0
            },
        };
        super::record_ingress_telemetry(self.name(), graph, &outcome, ctx);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{Grid, Hybrid, Random};
    use gp_core::EdgeList;
    use gp_gen::{bipartite, BipartiteParams};

    fn graph() -> EdgeList {
        bipartite(
            &BipartiteParams {
                users: 8_000,
                items: 200,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn favorite_side_vertices_are_never_replicated() {
        let g = graph();
        let out = BiCut::default().partition(&g, &PartitionContext::new(9));
        for u in 0..8_000 {
            assert_eq!(
                out.assignment.replica_count(VertexId(u)),
                if out.assignment.replicas(VertexId(u)).is_empty() {
                    0
                } else {
                    1
                },
                "user {u} must have exactly one replica"
            );
        }
    }

    #[test]
    fn auto_detection_picks_the_big_side() {
        let par = ParConfig::default();
        assert_eq!(BiCut::detect(&graph(), &par), FavoriteSide::Source);
        // Reverse the edges: now destinations are the big side.
        let reversed = gp_core::transform::reverse(&graph());
        assert_eq!(BiCut::detect(&reversed, &par), FavoriteSide::Target);
    }

    #[test]
    fn bicut_beats_general_purpose_strategies_on_bipartite_graphs() {
        // Default params: 2000 items with a Zipf tail, so many items fall
        // below Hybrid's degree threshold and get their edges hashed by
        // destination — scattering multi-item users. BiCut keeps every user
        // at exactly one replica regardless of item popularity.
        let g = bipartite(&BipartiteParams::default(), 3);
        let ctx = PartitionContext::new(9);
        let bicut = BiCut::default()
            .partition(&g, &ctx)
            .assignment
            .replication_factor();
        let random = Random.partition(&g, &ctx).assignment.replication_factor();
        let grid = Grid::strict()
            .partition(&g, &ctx)
            .assignment
            .replication_factor();
        let hybrid = Hybrid::default()
            .partition(&g, &ctx)
            .assignment
            .replication_factor();
        assert!(
            bicut < random * 0.6,
            "BiCut {bicut:.2} vs Random {random:.2}"
        );
        assert!(bicut < grid * 0.8, "BiCut {bicut:.2} vs Grid {grid:.2}");
        assert!(bicut < hybrid, "BiCut {bicut:.2} vs Hybrid {hybrid:.2}");
    }

    #[test]
    fn masters_sit_with_the_favorite_side_edges() {
        let g = graph();
        let out = BiCut::new(FavoriteSide::Source).partition(&g, &PartitionContext::new(9));
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(
                out.assignment.edge_partition(i),
                out.assignment.master_of(e.src),
                "user edges must sit at the user's master"
            );
        }
    }

    #[test]
    fn explicit_sides_differ() {
        let g = graph();
        let ctx = PartitionContext::new(9);
        let by_src = BiCut::new(FavoriteSide::Source).partition(&g, &ctx);
        let by_dst = BiCut::new(FavoriteSide::Target).partition(&g, &ctx);
        assert_ne!(
            by_src.assignment.edge_partitions(),
            by_dst.assignment.edge_partitions()
        );
        // Choosing the small side as favorite is much worse.
        assert!(by_src.assignment.replication_factor() < by_dst.assignment.replication_factor());
    }
}
