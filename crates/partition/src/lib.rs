//! # gp-partition — every partitioning strategy from Table 1.1
//!
//! This crate implements, from scratch, all eleven vertex-cut partitioning
//! strategies evaluated by the paper:
//!
//! | Strategy | Native system | Reference |
//! |---|---|---|
//! | Random (canonical) | PowerGraph / PowerLyra | §5.2.1 |
//! | Asymmetric Random | GraphX ("Random") | §7.2.1, §8.2.2 |
//! | Grid | PowerGraph (constrained) | §5.2.3, Graphbuilder |
//! | PDS | PowerGraph (constrained) | §5.2.3, perfect difference sets |
//! | Oblivious | PowerGraph (greedy) | §5.2.2, Appendix A |
//! | HDRF | PowerGraph (greedy, λ) | §5.2.4, Appendix B |
//! | 1D | GraphX | §7.2.2 |
//! | 1D-Target | thesis's new variant | §8.2.3 |
//! | 2D | GraphX | §7.2.3 |
//! | Hybrid | PowerLyra | §6.2.1 |
//! | Hybrid-Ginger | PowerLyra | §6.2.2 |
//!
//! Strategies consume an edge stream and produce an [`Assignment`] (edge →
//! partition) plus ingress accounting (simulated per-loader work, passes over
//! the data, strategy state memory) that the cluster model turns into the
//! ingress times of Figs 5.7/6.4/8.2. [`Assignment`] derives everything the
//! paper measures from partitions: replication factor, masters/mirrors,
//! load balance.
//!
//! ## Example
//!
//! ```
//! use gp_core::EdgeList;
//! use gp_partition::{PartitionContext, Strategy};
//!
//! let graph = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 1)]);
//! let ctx = PartitionContext::new(4).with_seed(7);
//! let outcome = Strategy::Hdrf.build().partition(&graph, &ctx);
//! assert!(outcome.assignment.replication_factor() >= 1.0);
//! ```

pub mod assignment;
pub mod incremental;
pub mod ingress;
pub mod partitioner;
pub mod persist;
pub mod speculative;
pub mod strategies;
pub mod strategy;

pub use assignment::{Assignment, BalanceReport};
pub use gp_par::ParConfig;
pub use incremental::{bicut_incremental, chunking_incremental, IncrementalPartitioner};
pub use ingress::{ingress_chunks, IngressReport, IngressVolumes};
pub use partitioner::{CostModel, PartitionContext, PartitionOutcome, Partitioner};
pub use persist::{load_assignment, read_assignment, save_assignment, write_assignment};
pub use speculative::{sharded_degree_table, SpecStats, WINDOW_AUTO};
pub use strategy::{Strategy, System};
