//! The [`Partitioner`] trait and partitioning context.
//!
//! All strategies are *online* (streaming) partitioners in the paper's sense:
//! they see the edge stream once per pass and assign each edge as it arrives.
//! The paper's ingress setup (§5.3) splits the input into one block per
//! machine and loads blocks in parallel; stateful heuristics (Oblivious,
//! HDRF) keep **per-loader** state only — each loader is "oblivious" to
//! assignments made by the others. [`PartitionContext::num_loaders`] models
//! that: stateless strategies ignore it, stateful ones shard their state.

use crate::assignment::Assignment;
use gp_core::StreamingEdges;
use gp_par::ParConfig;
use gp_telemetry::TelemetrySink;

/// Tunable simulated-work constants (arbitrary units; the cluster model
/// converts them to seconds). Defaults are calibrated so the relative ingress
/// times of Figs 5.7/6.4/8.2 hold: hash assignment is much cheaper than the
/// greedy heuristics, whose per-edge cost grows with the replica sets they
/// must scan, and multi-pass strategies pay per extra pass.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Work to parse one edge off the input stream (paid every pass).
    pub parse_edge: f64,
    /// Work to hash-assign one edge (Random/Grid/1D/2D/PDS and Hybrid's
    /// hashing phases).
    pub hash_assign: f64,
    /// Fixed work per greedy-heuristic decision (Oblivious/HDRF).
    pub heuristic_base: f64,
    /// Work per candidate-partition inspected by a greedy heuristic. The
    /// candidate count is `|A(u)| + |A(v)|` (Appendix A), so hubs that are
    /// replicated everywhere make the heuristic slow — this is what makes
    /// HDRF/Oblivious ingress slow on power-law graphs but competitive on
    /// road networks (§5.4.3).
    pub heuristic_per_candidate: f64,
    /// Work per vertex scored by the Ginger heuristic phase.
    pub ginger_base: f64,
    /// Work per in-neighbor scanned by the Ginger heuristic.
    pub ginger_per_neighbor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            parse_edge: 3.0,
            hash_assign: 0.15,
            heuristic_base: 0.3,
            heuristic_per_candidate: 0.4,
            ginger_base: 0.8,
            ginger_per_neighbor: 0.25,
        }
    }
}

/// Everything a strategy needs besides the edges themselves.
#[derive(Debug, Clone)]
pub struct PartitionContext {
    /// Number of partitions to produce. One per machine for
    /// PowerGraph/PowerLyra; typically one per core for GraphX (§7.2).
    pub num_partitions: u32,
    /// Number of parallel ingress loaders (= machines, §5.3). Stateful
    /// heuristics shard their state per loader.
    pub num_loaders: u32,
    /// Hash/tie-break seed.
    pub seed: u64,
    /// Simulated-work constants.
    pub cost: CostModel,
    /// Telemetry sink; [`TelemetrySink::Disabled`] by default, in which
    /// case strategies record nothing and compute nothing extra.
    pub telemetry: TelemetrySink,
    /// Real ingress thread count (distinct from the *simulated*
    /// `num_loaders`): how many OS threads stream edge chunks in parallel.
    /// Results are byte-identical at any value — see the `gp-par`
    /// ordered-reduction rule.
    pub par: ParConfig,
    /// Speculative-ingress window, in edges, for the stateful strategies.
    /// `0` (the default) and `1` keep the exact sequential greedy kernels.
    /// `window >= 2` switches HDRF, Oblivious and H-Ginger's refinement
    /// phase to the windowed speculative kernel (`crate::speculative`):
    /// the output is a pure function of `(graph, seed, partitions,
    /// loaders, window)` — still independent of `par.threads` — but sits
    /// within a *quality-parity* envelope of the sequential kernel (RF and
    /// balance within 5%) rather than being byte-identical to it, because
    /// conflict repair legitimately changes tie-break draw order.
    /// [`gp_partition::WINDOW_AUTO`](crate::WINDOW_AUTO) (CLI: `--window
    /// auto`) selects adaptive sizing: the window grows while the repair
    /// rate stays low and shrinks on conflict storms, with the schedule
    /// derived purely from committed-edge counts — so it too is
    /// bit-identical at every thread count.
    pub window: u32,
    /// Whether windowed loader blocks may overlap on the bounded two-stage
    /// block pipeline (block `N+1` speculates while block `N`'s repair
    /// walk commits). On by default; results are byte-identical either way
    /// — each block is a pure function of its own edge range and outputs
    /// fold in block order — so the knob exists only for the overlap
    /// on/off identity gate and for single-threaded debugging.
    pub overlap: bool,
}

impl PartitionContext {
    /// Context with `num_partitions` partitions, the same number of loaders,
    /// seed 42 and default costs.
    pub fn new(num_partitions: u32) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        PartitionContext {
            num_partitions,
            num_loaders: num_partitions,
            seed: 42,
            cost: CostModel::default(),
            telemetry: TelemetrySink::Disabled,
            par: ParConfig::default(),
            window: 0,
            overlap: true,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the loader count (e.g. GraphX: 16 partitions/machine but 9
    /// loading machines).
    pub fn with_loaders(mut self, loaders: u32) -> Self {
        assert!(loaders > 0, "need at least one loader");
        self.num_loaders = loaders;
        self
    }

    /// Attach a telemetry sink; strategies record ingress counters, gauges
    /// and per-loader work histograms into it.
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Set the real ingress thread count (`0` = available parallelism,
    /// `1` = sequential). Never changes a single output byte.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.par = ParConfig::new(threads);
        self
    }

    /// Set the speculative-ingress window (edges per window; `0` = off,
    /// i.e. the exact sequential greedy kernels;
    /// [`crate::WINDOW_AUTO`] = adaptive). See [`Self::window`].
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// Enable or disable overlapped loader blocks on the windowed path.
    /// Output is byte-identical either way; see [`Self::overlap`].
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }
}

/// What a partitioning run produces: the assignment plus ingress accounting.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Edge → partition mapping with derived replication statistics.
    pub assignment: Assignment,
    /// Simulated work units burned by each parallel loader. Ingress wall
    /// time is driven by `max(loader_work)`.
    pub loader_work: Vec<f64>,
    /// Full passes made over the edge stream (1 = single-pass streaming,
    /// 2 = Hybrid's counting+reassignment, 3 = Hybrid-Ginger).
    pub passes: u32,
    /// Peak bytes of strategy-private state (degree counters, replica
    /// bitsets, reassignment buffers). Hybrid/H-Ginger's extra phases make
    /// this large — the memory overhead of Figs 6.2/6.3.
    pub state_bytes: u64,
}

/// A graph partitioning strategy.
pub trait Partitioner {
    /// Short name as used in the paper's figures (e.g. `"HDRF"`).
    fn name(&self) -> &'static str;

    /// Partition the source's edges into `ctx.num_partitions` parts. Any
    /// [`StreamingEdges`] source works — an in-memory `EdgeList` (which
    /// coerces at every historical call site) or a mapped `gp-store` file —
    /// and the outcome depends only on the edge sequence, never on how it
    /// is stored.
    fn partition(&mut self, graph: &dyn StreamingEdges, ctx: &PartitionContext)
        -> PartitionOutcome;
}

/// Split `total` items into per-loader chunk lengths (mirrors
/// `EdgeList::blocks`); used by strategies to attribute work to loaders and
/// to bound each simulated loader's slice of the stream.
pub fn loader_chunks(total: usize, loaders: u32) -> Vec<usize> {
    let l = loaders as usize;
    let base = total / l;
    let rem = total % l;
    (0..l).map(|i| base + usize::from(i < rem)).collect()
}

/// The same split as [`loader_chunks`], as edge-index ranges into the
/// stream. Block boundaries are a pure function of `(total, loaders)` — the
/// determinism anchor that makes loader-shard results independent of both
/// thread count and edge storage.
pub fn loader_ranges(total: usize, loaders: u32) -> Vec<std::ops::Range<usize>> {
    let mut start = 0usize;
    loader_chunks(total, loaders)
        .into_iter()
        .map(|len| {
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_defaults_are_sane() {
        let ctx = PartitionContext::new(9);
        assert_eq!(ctx.num_partitions, 9);
        assert_eq!(ctx.num_loaders, 9);
        assert_eq!(ctx.seed, 42);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_is_rejected() {
        PartitionContext::new(0);
    }

    #[test]
    fn builder_overrides_apply() {
        let ctx = PartitionContext::new(4).with_seed(7).with_loaders(2);
        assert_eq!(ctx.seed, 7);
        assert_eq!(ctx.num_loaders, 2);
    }

    #[test]
    fn loader_chunks_cover_everything_evenly() {
        let chunks = loader_chunks(10, 3);
        assert_eq!(chunks.iter().sum::<usize>(), 10);
        assert_eq!(chunks, vec![4, 3, 3]);
        assert_eq!(loader_chunks(0, 3), vec![0, 0, 0]);
        assert_eq!(loader_chunks(2, 5), vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn default_cost_model_orders_hash_below_heuristic() {
        let c = CostModel::default();
        assert!(c.hash_assign < c.heuristic_base);
    }
}
