//! Incremental (serving-time) edge assignment.
//!
//! A long-running service (`gp-serve`) cannot re-run batch ingress for every
//! streamed edge insert; it needs a per-edge *assign step* that maintains the
//! same placement policy the batch partitioner would have used. This module
//! gives every strategy in the catalog such a step behind one trait:
//!
//! * **Stateless hash strategies** (Random, Assym-Rand, 1D, 1D-Target, 2D,
//!   Grid, PDS, BiCut with a resolved favorite side) call the *same* per-edge
//!   function as the batch path, so incremental placement is byte-identical
//!   to batch by construction — [`IncrementalPartitioner::is_exact`] returns
//!   `true` and the equivalence is locked by tests here and by the
//!   churn-replay suite.
//! * **Stateful heuristics** (Oblivious, HDRF, Hybrid, H-Ginger, Chunking)
//!   depend on the order and sharding of the batch stream, which a live
//!   stream cannot reproduce. Their incremental variants run the loader-0
//!   decision rule over the live stream — the same scoring code, single
//!   shard — and are *quality-parity* approximations: `is_exact()` is
//!   `false`, and the serve-level tests gate replication factor and edge
//!   balance to within 5% of a batch re-partition instead of demanding
//!   byte equality.
//!
//! Deletes call [`IncrementalPartitioner::retire`], which decays whatever
//! running state the heuristic keeps (partition loads, degree counters).
//! Replica *sets* never shrink here — mirror teardown is an assignment-level
//! concern handled by the serving layer's refcounts, mirroring how deployed
//! systems keep mirrors warm until a rebalance reclaims them.

use crate::strategies::bicut::bicut_edge;
use crate::strategies::constrained::{grid_edge, pds_edge};
use crate::strategies::hash::{
    asym_random_edge, one_d_edge, one_d_target_edge, random_edge, two_d_edge,
};
use crate::strategies::hdrf::HdrfLoader;
use crate::strategies::hybrid::hybrid_edge;
use crate::strategies::oblivious::{oblivious_choose, GreedyState};
use crate::strategies::{FavoriteSide, Pds, TwoD};
use crate::strategy::Strategy;
use gp_core::{Edge, PartitionId};

/// A partitioner that assigns one edge at a time and can unwind deletes.
///
/// `assign` takes the edge's position in the lifetime stream (`index`,
/// counting every insert since serving began — only Chunking uses it) and
/// must be called in stream order for the stateful heuristics to be
/// meaningful. Implementations are `Send` so a serving loop can live on a
/// worker thread.
pub trait IncrementalPartitioner: Send {
    /// Short name matching the batch partitioner's figure label.
    fn name(&self) -> &'static str;

    /// Place the `index`-th streamed edge. Stateful implementations also
    /// record the placement (load counters, replica bitsets) before
    /// returning.
    fn assign(&mut self, index: u64, e: Edge) -> PartitionId;

    /// Unwind a delete of edge `e` previously placed on `p`: decay running
    /// load/degree state so later placements see the smaller graph. The
    /// default is a no-op (stateless strategies have nothing to decay).
    fn retire(&mut self, e: Edge, p: PartitionId) {
        let _ = (e, p);
    }

    /// Absorb a base-snapshot edge already placed on `p` by batch ingress,
    /// advancing running state (loads, replica sets, degree counters)
    /// without making a decision. Serving calls this once per base edge
    /// before the live stream starts. Default: no-op (stateless strategies
    /// carry no state).
    fn warm(&mut self, e: Edge, p: PartitionId) {
        let _ = (e, p);
    }

    /// `true` if replaying a batch run's edge sequence through [`assign`]
    /// reproduces the batch placements byte-for-byte.
    ///
    /// [`assign`]: IncrementalPartitioner::assign
    fn is_exact(&self) -> bool;

    /// Approximate bytes of incremental state held (0 for stateless).
    fn state_bytes(&self) -> u64 {
        0
    }
}

/// Stateless wrapper: a pure per-edge function shared with the batch path.
struct Stateless {
    name: &'static str,
    f: Box<dyn Fn(Edge) -> PartitionId + Send>,
}

impl IncrementalPartitioner for Stateless {
    fn name(&self) -> &'static str {
        self.name
    }

    fn assign(&mut self, _index: u64, e: Edge) -> PartitionId {
        (self.f)(e)
    }

    fn is_exact(&self) -> bool {
        true
    }
}

/// Incremental Oblivious: the loader-0 greedy state fed by the live stream.
struct IncrementalOblivious {
    state: GreedyState,
}

impl IncrementalPartitioner for IncrementalOblivious {
    fn name(&self) -> &'static str {
        "Oblivious"
    }

    fn assign(&mut self, _index: u64, e: Edge) -> PartitionId {
        let p = oblivious_choose(&mut self.state, e);
        self.state.commit(e, p);
        p
    }

    fn retire(&mut self, _e: Edge, p: PartitionId) {
        let load = &mut self.state.load[p.index()];
        *load = load.saturating_sub(1);
        self.state.assigned = self.state.assigned.saturating_sub(1);
    }

    fn warm(&mut self, e: Edge, p: PartitionId) {
        self.state.commit(e, p);
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn state_bytes(&self) -> u64 {
        self.state.state_bytes()
    }
}

/// Incremental HDRF: the loader-0 HDRF scorer fed by the live stream.
struct IncrementalHdrf {
    loader: HdrfLoader,
}

impl IncrementalPartitioner for IncrementalHdrf {
    fn name(&self) -> &'static str {
        "HDRF"
    }

    fn assign(&mut self, _index: u64, e: Edge) -> PartitionId {
        let p = self.loader.choose(e);
        self.loader.greedy.commit(e, p);
        p
    }

    fn retire(&mut self, e: Edge, p: PartitionId) {
        let load = &mut self.loader.greedy.load[p.index()];
        *load = load.saturating_sub(1);
        self.loader.greedy.assigned = self.loader.greedy.assigned.saturating_sub(1);
        // Partial degrees shrink with the graph so θ keeps tracking the
        // live degree distribution.
        for v in [e.src, e.dst] {
            let d = &mut self.loader.partial_degree[v.index()];
            *d = d.saturating_sub(1);
        }
    }

    fn warm(&mut self, e: Edge, p: PartitionId) {
        self.loader.warm(e, p);
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn state_bytes(&self) -> u64 {
        self.loader.state_bytes()
    }
}

/// Incremental Hybrid (and H-Ginger, which degenerates to Hybrid at serve
/// time — the Ginger refinement is a whole-graph pass with no per-edge
/// form). Batch Hybrid uses *actual* in-degrees from a counting pass; the
/// incremental variant feeds *running* in-degrees into the same placement
/// rule, so a destination flips from edge-cut to vertex-cut treatment the
/// moment its live in-degree crosses the threshold.
struct IncrementalHybrid {
    name: &'static str,
    in_deg: Vec<u32>,
    threshold: u32,
    seed: u64,
    p: u64,
}

impl IncrementalPartitioner for IncrementalHybrid {
    fn name(&self) -> &'static str {
        self.name
    }

    fn assign(&mut self, _index: u64, e: Edge) -> PartitionId {
        let slot = &mut self.in_deg[e.dst.index()];
        *slot += 1;
        hybrid_edge(e, *slot, self.threshold, self.seed, self.p)
    }

    fn retire(&mut self, e: Edge, _p: PartitionId) {
        let slot = &mut self.in_deg[e.dst.index()];
        *slot = slot.saturating_sub(1);
    }

    fn warm(&mut self, e: Edge, _p: PartitionId) {
        self.in_deg[e.dst.index()] += 1;
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn state_bytes(&self) -> u64 {
        4 * self.in_deg.len() as u64
    }
}

/// Incremental Chunking: fixed-width chunks derived from the *base* edge
/// count. Batch Chunking computes `(i * p) / m` with the final `m`, which a
/// live stream cannot know, so the incremental variant freezes the chunk
/// width at `ceil(base / p)` and lets the stream spill into the last
/// partition — approximate (`is_exact() == false`), with the serve layer's
/// drift watcher responsible for re-chunking when the spill skews balance.
struct IncrementalChunking {
    chunk: u64,
    p: u32,
}

impl IncrementalPartitioner for IncrementalChunking {
    fn name(&self) -> &'static str {
        "Chunking"
    }

    fn assign(&mut self, index: u64, _e: Edge) -> PartitionId {
        PartitionId(((index / self.chunk).min(self.p as u64 - 1)) as u32)
    }

    fn is_exact(&self) -> bool {
        false
    }
}

/// Incremental Chunking for a stream that began as `base_edges` batch edges
/// split over `num_partitions` contiguous chunks.
pub fn chunking_incremental(
    base_edges: u64,
    num_partitions: u32,
) -> Box<dyn IncrementalPartitioner> {
    assert!(num_partitions > 0, "need at least one partition");
    let chunk = base_edges.div_ceil(num_partitions as u64).max(1);
    Box::new(IncrementalChunking {
        chunk,
        p: num_partitions,
    })
}

/// Incremental BiCut for a **resolved** favorite side. `Auto` must be
/// resolved against the base snapshot (via `BiCut`'s detection pass) before
/// serving starts; a live stream would make the verdict time-dependent.
pub fn bicut_incremental(
    side: FavoriteSide,
    num_partitions: u32,
    seed: u64,
) -> Box<dyn IncrementalPartitioner> {
    assert!(
        side != FavoriteSide::Auto,
        "resolve FavoriteSide::Auto against the base snapshot before serving"
    );
    assert!(num_partitions > 0, "need at least one partition");
    let p = num_partitions as u64;
    Box::new(Stateless {
        name: "BiCut",
        f: Box::new(move |e| bicut_edge(e, side, seed, p)),
    })
}

impl Strategy {
    /// The incremental (serving-time) form of this strategy, with the same
    /// default parameters as [`Strategy::build`]. `num_vertices` bounds the
    /// vertex-id space (stateful heuristics size dense tables with it);
    /// `seed` must match the batch seed for the exact strategies to
    /// reproduce batch placements.
    pub fn incremental(
        self,
        num_partitions: u32,
        num_vertices: u64,
        seed: u64,
    ) -> Box<dyn IncrementalPartitioner> {
        assert!(num_partitions > 0, "need at least one partition");
        let p = num_partitions;
        let stateless = |name: &'static str, f: Box<dyn Fn(Edge) -> PartitionId + Send>| {
            Box::new(Stateless { name, f }) as Box<dyn IncrementalPartitioner>
        };
        match self {
            Strategy::Random => stateless("Random", Box::new(move |e| random_edge(e, seed, p))),
            Strategy::AsymmetricRandom => stateless(
                "Assym-Rand",
                Box::new(move |e| asym_random_edge(e, seed, p)),
            ),
            Strategy::OneD => stateless("1D", Box::new(move |e| one_d_edge(e, seed, p))),
            Strategy::OneDTarget => stateless(
                "1D-Target",
                Box::new(move |e| one_d_target_edge(e, seed, p)),
            ),
            Strategy::TwoD => {
                let side = TwoD::side(p) as u64;
                stateless("2D", Box::new(move |e| two_d_edge(e, seed, p, side)))
            }
            // The catalog's Grid is the resilient variant (any count), same
            // as `Strategy::build`.
            Strategy::Grid => {
                let side = (p as f64).sqrt().ceil() as u64;
                let virtual_n = side * side;
                stateless(
                    "Grid",
                    Box::new(move |e| grid_edge(e, seed, p, side, virtual_n)),
                )
            }
            Strategy::Pds => {
                let order = Pds::order_for(p).unwrap_or_else(|| {
                    panic!(
                        "PDS requires p^2+p+1 machines for prime p (7, 13, 31, 57, ...), got {p}"
                    )
                });
                let ds = Pds::difference_set(order).expect("difference set exists for prime order");
                stateless("PDS", Box::new(move |e| pds_edge(e, seed, &ds, p)))
            }
            // Stateful heuristics run the loader-0 decision rule (same
            // seed derivation as batch loader 0) over the live stream.
            Strategy::Oblivious => Box::new(IncrementalOblivious {
                state: GreedyState::new(p, num_vertices, seed ^ 0x0b11),
            }),
            Strategy::Hdrf => Box::new(IncrementalHdrf {
                loader: HdrfLoader::new(p, num_vertices, seed ^ 0x4d5f, 1.0),
            }),
            Strategy::Hybrid => Box::new(IncrementalHybrid {
                name: "Hybrid",
                in_deg: vec![0; num_vertices as usize],
                threshold: crate::strategies::hybrid::DEFAULT_THRESHOLD,
                seed,
                p: p as u64,
            }),
            Strategy::HybridGinger => Box::new(IncrementalHybrid {
                name: "H-Ginger",
                in_deg: vec![0; num_vertices as usize],
                threshold: crate::strategies::hybrid::DEFAULT_THRESHOLD,
                seed,
                p: p as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{PartitionContext, Partitioner};
    use crate::strategies::BiCut;
    use gp_core::VertexId;

    const SEED: u64 = 7;

    fn graph() -> gp_core::EdgeList {
        gp_gen::barabasi_albert(2_000, 6, 3)
    }

    /// The exactness contract: replaying the batch stream through the
    /// incremental form reproduces batch placements byte-for-byte for every
    /// strategy that claims `is_exact()`.
    #[test]
    fn exact_strategies_reproduce_batch_placements() {
        let g = graph();
        for s in Strategy::ALL {
            let p = if s == Strategy::Pds { 13 } else { 9 };
            let mut inc = s.incremental(p, g.num_vertices(), SEED);
            if !inc.is_exact() {
                continue;
            }
            let batch = s
                .build()
                .partition(&g, &PartitionContext::new(p).with_seed(SEED));
            for (i, e) in g.edges().iter().enumerate() {
                assert_eq!(
                    inc.assign(i as u64, *e),
                    batch.assignment.edge_partition(i),
                    "{s}: edge {i} diverged from batch"
                );
            }
        }
    }

    #[test]
    fn exactness_flags_match_the_strategy_taxonomy() {
        let exact: Vec<Strategy> = Strategy::ALL
            .into_iter()
            .filter(|s| {
                let p = if *s == Strategy::Pds { 13 } else { 9 };
                s.incremental(p, 100, SEED).is_exact()
            })
            .collect();
        assert_eq!(
            exact,
            vec![
                Strategy::OneD,
                Strategy::TwoD,
                Strategy::AsymmetricRandom,
                Strategy::Grid,
                Strategy::Random,
                Strategy::OneDTarget,
                Strategy::Pds,
            ]
        );
    }

    /// Grid's resilient fold-back for non-square counts is part of the
    /// shared per-edge function, so exactness holds there too.
    #[test]
    fn grid_is_exact_for_non_square_counts() {
        let g = graph();
        let p = 10;
        let mut inc = Strategy::Grid.incremental(p, g.num_vertices(), SEED);
        let batch = Strategy::Grid
            .build()
            .partition(&g, &PartitionContext::new(p).with_seed(SEED));
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(inc.assign(i as u64, *e), batch.assignment.edge_partition(i));
        }
    }

    /// The stateful heuristics sequentially replayed match a single-loader
    /// batch run exactly: both run the loader-0 rule over the same stream.
    /// (Multi-loader batch shards state and diverges — that gap is what the
    /// serve-level 5% quality-parity gates cover.)
    #[test]
    fn stateful_replay_matches_single_loader_batch() {
        let g = graph();
        for s in [Strategy::Oblivious, Strategy::Hdrf] {
            let mut inc = s.incremental(9, g.num_vertices(), SEED);
            let batch = s.build().partition(
                &g,
                &PartitionContext::new(9).with_seed(SEED).with_loaders(1),
            );
            for (i, e) in g.edges().iter().enumerate() {
                assert_eq!(
                    inc.assign(i as u64, *e),
                    batch.assignment.edge_partition(i),
                    "{s}: edge {i} diverged from 1-loader batch"
                );
            }
        }
    }

    /// Hybrid's incremental form uses running degrees, so after the full
    /// replay only edges whose destination was still cold at assign time can
    /// differ from batch (which used final degrees). Every divergent edge
    /// must involve a destination that ended above the threshold.
    #[test]
    fn hybrid_divergence_is_confined_to_threshold_crossers() {
        let g = graph();
        let mut inc = Strategy::Hybrid.incremental(9, g.num_vertices(), SEED);
        let batch = Strategy::Hybrid
            .build()
            .partition(&g, &PartitionContext::new(9).with_seed(SEED));
        let mut final_in_deg = vec![0u32; g.num_vertices() as usize];
        for e in g.edges() {
            final_in_deg[e.dst.index()] += 1;
        }
        for (i, e) in g.edges().iter().enumerate() {
            let got = inc.assign(i as u64, *e);
            if got != batch.assignment.edge_partition(i) {
                assert!(
                    final_in_deg[e.dst.index()] > crate::strategies::hybrid::DEFAULT_THRESHOLD,
                    "edge {i} diverged but dst degree {} never crossed the threshold",
                    final_in_deg[e.dst.index()]
                );
            }
        }
    }

    #[test]
    fn oblivious_retire_decays_load() {
        let g = graph();
        let mut inc = Strategy::Oblivious.incremental(9, g.num_vertices(), SEED);
        let mut placed = Vec::new();
        for (i, e) in g.edges().iter().enumerate().take(500) {
            placed.push((*e, inc.assign(i as u64, *e)));
        }
        let before = inc.state_bytes();
        assert!(before > 0, "oblivious keeps state");
        for (e, p) in &placed {
            inc.retire(*e, *p);
        }
        // Loads are back to zero: the next placement sees an empty cluster
        // and the tie-break picks among all partitions.
        let refilled = inc.assign(500, placed[0].0);
        assert!(refilled.0 < 9);
    }

    #[test]
    fn hybrid_retire_reverses_assign() {
        // Degree counters return to their pre-insert value, so a delete
        // followed by the same insert reproduces the same placement.
        let g = graph();
        let n = g.num_vertices();
        let mut inc = Strategy::Hybrid.incremental(9, n, SEED);
        let e = g.edges()[0];
        let first = inc.assign(0, e);
        inc.retire(e, first);
        let again = inc.assign(1, e);
        assert_eq!(first, again);
    }

    #[test]
    fn warming_seeds_stateful_decisions() {
        // After warming an edge onto partition 2, both endpoints have their
        // only replica there, so the greedy intersection case must keep the
        // next copy of that edge co-located on 2.
        for s in [Strategy::Oblivious, Strategy::Hdrf] {
            let mut inc = s.incremental(9, 100, SEED);
            let e = Edge {
                src: VertexId(3),
                dst: VertexId(4),
            };
            inc.warm(e, PartitionId(2));
            assert_eq!(inc.assign(0, e), PartitionId(2), "{s}");
        }
    }

    #[test]
    fn chunking_spills_into_the_last_partition() {
        let mut inc = chunking_incremental(100, 4);
        assert!(!inc.is_exact());
        let e = Edge {
            src: VertexId(0),
            dst: VertexId(1),
        };
        assert_eq!(inc.assign(0, e), PartitionId(0));
        assert_eq!(inc.assign(99, e), PartitionId(3));
        // Stream growth past the base count spills into the last chunk.
        assert_eq!(inc.assign(1_000, e), PartitionId(3));
    }

    #[test]
    fn bicut_incremental_matches_batch_explicit_side() {
        let g = gp_gen::bipartite(&gp_gen::BipartiteParams::default(), 3);
        let mut inc = bicut_incremental(FavoriteSide::Source, 9, SEED);
        assert!(inc.is_exact());
        let batch = BiCut::new(FavoriteSide::Source)
            .partition(&g, &PartitionContext::new(9).with_seed(SEED));
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(inc.assign(i as u64, *e), batch.assignment.edge_partition(i));
        }
    }

    #[test]
    #[should_panic(expected = "resolve FavoriteSide::Auto")]
    fn bicut_incremental_rejects_auto() {
        bicut_incremental(FavoriteSide::Auto, 9, SEED);
    }

    #[test]
    #[should_panic(expected = "PDS requires")]
    fn pds_incremental_rejects_invalid_counts() {
        Strategy::Pds.incremental(9, 100, SEED);
    }
}
