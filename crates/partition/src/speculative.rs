//! Windowed speculative ingress for the stateful greedy partitioners.
//!
//! HDRF and Oblivious assign each edge by scoring it against state mutated
//! by every previous edge — an inherently sequential loop that caps ingress
//! at ~4.4M edges/s while the stateless hash families stream at 50M+. This
//! module breaks that wall with *bounded speculation*:
//!
//! 1. **Window.** Each loader's edge block is cut into windows — fixed
//!    `W`-edge windows for `--window W`, or adaptively sized ones for
//!    `--window auto` (see [`WindowController`]). Either way the window
//!    schedule is a pure function of the edge stream, never of the thread
//!    count.
//! 2. **Speculate.** `gp-par` workers score all window edges in parallel
//!    against a read-only snapshot of the loader state as of the window
//!    start (replica [`PartitionSet`]s, per-partition loads, degree
//!    counters). Scoring runs in explicit 4-wide unrolled lanes with
//!    branchless capacity selects over the bitset words (see
//!    [`SCORE_LANES`]), into a per-worker [`ScoreScratch`] — no per-edge
//!    allocation, no branches the vectorizer cannot lower to masks. Each
//!    edge draws tie-breaks from its own [`Splitmix64`] seeded by the
//!    *stream index*, so a score depends only on `(committed state, edge,
//!    index)`, never on chunk boundaries.
//! 3. **Repair.** A sequential pass walks the window in stream order and
//!    commits each edge. A speculative choice is kept iff its score inputs
//!    are unchanged: neither endpoint was touched earlier in the same
//!    window (replica sets unchanged) and the chosen partition is still
//!    under the live capacity cap. Otherwise the edge is re-scored — same
//!    pure function, live sets/loads — so only conflicted edges pay the
//!    sequential cost.
//! 4. **Merge.** Strategies with degree state fold the committed window's
//!    endpoint touches into their counters *after* the repair walk
//!    ([`WindowKernel::end_window`]) — degree counters are frozen for the
//!    duration of a window by design, and elementwise integer addition is
//!    insensitive to how the window was chunked.
//!
//! Loader blocks themselves overlap through [`gp_par::pipeline_ordered`]
//! (see [`partition_windowed_blocks`]): each block is a pure function of
//! its own edge range — own kernel, own stamp set, own window schedule —
//! so while block `N`'s repair walk commits, block `N+1`'s windows are
//! already being scored on another worker. Results concatenate strictly in
//! block order, which is why the overlap knob cannot change a single byte.
//!
//! ## Determinism and the quality-parity contract
//!
//! The committed output is a pure function of `(graph, seed, partitions,
//! loaders, window)`: window boundaries (fixed *or* adaptive — the
//! controller only reads committed-edge counts), per-edge RNGs, the
//! stream-order repair walk and the ordered degree merge are all
//! independent of `--threads`, so any thread count yields byte-identical
//! placements — `threads == 1` simply runs the speculation loop inline.
//!
//! The output is **not** byte-identical to the sequential kernel (`window
//! == 0`): repaired edges legitimately re-draw tie-breaks, degree counters
//! are frozen per window (an edge's θ sees previous windows plus its own
//! endpoints, not same-window predecessors), and pure balance drift within
//! a window is deliberately not treated as a conflict. Those deviations are
//! bounded by the window length and gated by the `stateful_parity` suite:
//! replication factor and balance within 5% of the sequential kernel, and
//! `window <= 1` dispatches to the sequential code path, byte-identical by
//! construction.

use crate::partitioner::{loader_ranges, PartitionContext};
use gp_core::{
    for_each_edge, DegreeTable, Edge, PartitionId, PartitionSet, Splitmix64, StreamingEdges,
    VertexId,
};
use gp_par::ParConfig;
use std::ops::Range;

/// Sentinel `window` value meaning *adaptive*: the [`WindowController`]
/// grows the window geometrically while the repair rate stays low and
/// shrinks it on conflict storms. CLI spelling: `--window auto`.
pub const WINDOW_AUTO: u32 = u32::MAX;

/// How many loader blocks may be in flight at once on the block pipeline.
/// Two stages — block `N` repairing/committing while block `N+1`
/// speculates — is the whole point; more would multiply peak kernel state
/// (each in-flight block owns a full replica/degree table) for no extra
/// overlap of the sequential walks.
pub(crate) const PIPELINE_DEPTH: usize = 2;

/// Counters describing one windowed run (exported as `par.spec_*`
/// telemetry): windows processed, speculative placements kept, placements
/// re-scored by the repair pass, plus the adaptive controller's trajectory.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecStats {
    /// Windows processed across all loader blocks.
    pub windows: u64,
    /// Edges whose speculative placement was committed unchanged.
    pub speculated: u64,
    /// Edges re-scored by the sequential repair pass.
    pub repaired: u64,
    /// Largest window actually processed (equals the configured window for
    /// fixed-window runs, up to block truncation).
    pub max_window: u64,
    /// Times the adaptive controller halved the window after a conflict
    /// storm. Always 0 for fixed-window runs.
    pub shrinks: u64,
}

impl SpecStats {
    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: SpecStats) {
        self.windows += other.windows;
        self.speculated += other.speculated;
        self.repaired += other.repaired;
        self.max_window = self.max_window.max(other.max_window);
        self.shrinks += other.shrinks;
    }

    /// Fraction of scored edges that needed the sequential repair re-score.
    pub fn repair_rate(&self) -> f64 {
        let scored = self.speculated + self.repaired;
        if scored == 0 {
            0.0
        } else {
            self.repaired as f64 / scored as f64
        }
    }
}

/// Per-block window-size schedule. For a fixed `--window W` it always
/// answers `W`. For `--window auto` it starts at [`Self::INITIAL`] and,
/// after each window commits, doubles the window (up to [`Self::MAX`])
/// while the window's repair rate stayed under [`Self::GROW_BELOW`], or
/// halves it (down to [`Self::MIN`]) when the rate exceeded
/// [`Self::SHRINK_ABOVE`] — a conflict storm, where speculation is mostly
/// wasted work and big windows just grow the amount thrown away.
///
/// The controller's only inputs are the committed window length and the
/// repair count — both pure functions of the edge stream — so the schedule
/// is bit-identical across thread counts, and each loader block runs its
/// own controller from scratch, keeping blocks independent for the overlap
/// pipeline.
pub(crate) struct WindowController {
    next: usize,
    adaptive: bool,
}

impl WindowController {
    /// Starting window for `--window auto`.
    pub(crate) const INITIAL: usize = 1024;
    /// Conflict-storm floor: never shrink below this.
    pub(crate) const MIN: usize = 256;
    /// Growth ceiling: windows larger than this stop amortizing per-window
    /// overhead and only widen the frozen-degree deviation.
    pub(crate) const MAX: usize = 262_144;
    /// Repair rate under which the window doubles.
    pub(crate) const GROW_BELOW: f64 = 0.15;
    /// Repair rate above which the window halves.
    pub(crate) const SHRINK_ABOVE: f64 = 0.40;

    pub(crate) fn new(window: u32) -> Self {
        if window == WINDOW_AUTO {
            WindowController {
                next: Self::INITIAL,
                adaptive: true,
            }
        } else {
            WindowController {
                next: window as usize,
                adaptive: false,
            }
        }
    }

    /// Size of the next window to cut.
    pub(crate) fn current(&self) -> usize {
        self.next
    }

    /// Feed back one committed window: `committed` edges, of which
    /// `repaired` were re-scored. Adjusts the next window size (adaptive
    /// mode only) and counts shrinks into `stats`.
    pub(crate) fn observe(&mut self, committed: usize, repaired: u64, stats: &mut SpecStats) {
        if !self.adaptive || committed == 0 {
            return;
        }
        let rate = repaired as f64 / committed as f64;
        if rate < Self::GROW_BELOW {
            self.next = (self.next * 2).min(Self::MAX);
        } else if rate > Self::SHRINK_ABOVE {
            let shrunk = (self.next / 2).max(Self::MIN);
            if shrunk < self.next {
                stats.shrinks += 1;
            }
            self.next = shrunk;
        }
    }
}

/// Reusable per-worker scoring scratch: the per-partition score buffer the
/// 4-wide lanes fill and the pick scans read. One lives in each speculation
/// chunk and one in the repair walk, reused across every edge they score —
/// the score path itself allocates nothing.
pub(crate) struct ScoreScratch {
    scores: Vec<f64>,
}

impl ScoreScratch {
    pub(crate) fn new(partitions: usize) -> Self {
        ScoreScratch {
            scores: vec![0.0; partitions],
        }
    }

    #[inline]
    pub(crate) fn scores(&mut self) -> &mut [f64] {
        &mut self.scores
    }
}

/// O(1) membership over `0..n` vertices with O(1) whole-set clear: each
/// vertex carries the id of the last window that touched it. Avoids an
/// O(n/64) bitset clear per window, which would dominate at small `W`.
pub(crate) struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    pub fn new(n: usize) -> Self {
        StampSet {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Start a new window: every vertex becomes unmarked. Handles epoch
    /// wrap-around (once per 2^32 windows) by a full reset.
    pub fn advance(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    #[inline]
    pub fn mark(&mut self, v: VertexId) {
        self.stamp[v.index()] = self.epoch;
    }
}

/// The per-edge tie-break RNG of the windowed kernels: a fresh
/// [`Splitmix64`] keyed by `(loader seed, stream index)`. Giving every edge
/// its own stream (instead of the sequential kernel's single shared stream)
/// is what lets speculation and repair score the same edge identically no
/// matter which worker — or which pass — evaluates it.
#[inline]
pub(crate) fn edge_rng(seed: u64, global_idx: usize) -> Splitmix64 {
    Splitmix64::new(gp_core::hash_u64(global_idx as u64, seed))
}

/// Per-vertex in/out degrees computed in parallel: each chunk counts into a
/// thread-local [`DegreeTable`] shard, shards merge in chunk order.
/// Elementwise integer addition is chunking-invariant, so the result is
/// byte-identical to [`gp_core::EdgeList::degrees`] at every thread count —
/// property-tested in `crates/partition/tests/shard_merge.rs`.
pub fn sharded_degree_table(graph: &dyn StreamingEdges, par: &ParConfig) -> DegreeTable {
    let n = graph.num_vertices() as usize;
    let mut shards = gp_par::map_chunks(par, graph.num_edges(), |_, range| {
        let mut shard = DegreeTable::zeroed(n);
        for_each_edge(graph, range, |e| shard.record(e));
        shard
    });
    if shards.len() == 1 {
        return shards.pop().expect("one shard");
    }
    let mut table = DegreeTable::zeroed(n);
    for shard in &shards {
        table.merge_from(shard);
    }
    table
}

/// Lane width of the unrolled scoring loops. The lane bodies are pure
/// f64 multiply/add plus a branchless capacity select, so on targets with
/// 256-bit vectors (`target_feature = "avx2"`) LLVM lowers each 4-lane
/// group to single `vmulpd`/`vaddpd`/`vblendvpd` instructions; elsewhere
/// the identical code stays scalar-safe — and because vector mul/add round
/// exactly like their scalar IEEE-754 counterparts, both lowerings are
/// bit-identical.
#[cfg(target_feature = "avx2")]
pub(crate) const SCORE_LANES: usize = 4;
/// Scalar-safe fallback: the same 4-wide loop shape, lowered to scalar ops.
#[cfg(not(target_feature = "avx2"))]
pub(crate) const SCORE_LANES: usize = 4;

/// Least-loaded partition over all partitions, ties broken uniformly with
/// `rng` (one draw over ascending order) — the pure-function analogue of
/// `GreedyState::least_loaded_all` for snapshot scoring. The min/tie
/// reduction runs in [`SCORE_LANES`]-wide unrolled lanes; min and tie-count
/// are order-insensitive, and the final pick scans ascending, so the result
/// matches the scalar loop exactly.
pub(crate) fn least_loaded_all(loads: &[u64], rng: &mut Splitmix64) -> PartitionId {
    let mut lane_min = [u64::MAX; SCORE_LANES];
    let chunks = loads.chunks_exact(SCORE_LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for k in 0..SCORE_LANES {
            lane_min[k] = lane_min[k].min(c[k]);
        }
    }
    let mut min = lane_min.into_iter().min().expect("lanes > 0");
    for &l in tail {
        min = min.min(l);
    }
    let mut tied = 0u64;
    for &l in loads {
        tied += u64::from(l == min);
    }
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for (c, &l) in loads.iter().enumerate() {
        if l == min {
            if seen == pick {
                return PartitionId(c as u32);
            }
            seen += 1;
        }
    }
    unreachable!("pick < tied count")
}

/// Least-loaded partition among a non-empty candidate set, ties broken
/// uniformly with `rng` over ascending bit order — the pure-function
/// analogue of `GreedyState::least_loaded_in`.
pub(crate) fn least_loaded_in(
    loads: &[u64],
    candidates: &PartitionSet,
    rng: &mut Splitmix64,
) -> PartitionId {
    let min = candidates
        .iter()
        .map(|c| loads[c as usize])
        .min()
        .expect("non-empty candidate set");
    let tied = candidates
        .iter()
        .filter(|&c| loads[c as usize] == min)
        .count() as u64;
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for c in candidates.iter() {
        if loads[c as usize] == min {
            if seen == pick {
                return PartitionId(c);
            }
            seen += 1;
        }
    }
    unreachable!("pick < tied count")
}

/// HDRF's Appendix-B score as a pure function of the visible state. The
/// caller supplies the load aggregates (`max_load`/`min_load` — frozen per
/// window on the speculation path, recomputed live on the repair path) and
/// a [`ScoreScratch`] buffer; the fill loop runs in explicit
/// [`SCORE_LANES`]-wide unrolled lanes whose bodies are branchless —
/// membership is two shifts off the replica-bitset words, the capacity
/// constraint is a select to `-inf` — and the best/tie scan walks the
/// filled buffer in ascending partition order with the same `1e-12`
/// epsilon as the sequential kernel. Returns `None` when every partition
/// is at capacity (caller falls back to least-loaded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hdrf_score(
    loads: &[u64],
    capacity: u64,
    au: &PartitionSet,
    av: &PartitionSet,
    theta_u: f64,
    theta_v: f64,
    lambda: f64,
    max_load: f64,
    min_load: f64,
    rng: &mut Splitmix64,
    scores: &mut [f64],
) -> Option<PartitionId> {
    let p = loads.len();
    debug_assert_eq!(scores.len(), p);
    const EPS: f64 = 1.0;
    let g_u = 1.0 + (1.0 - theta_u);
    let g_v = 1.0 + (1.0 - theta_v);
    let uw = au.words();
    let vw = av.words();
    let bal_denom = EPS + max_load - min_load;
    // One lane: straight-line f64 arithmetic with a branchless select.
    // Inline sets always carry 4 words; vertices never placed past
    // partition 255 read membership 0 beyond them, as they must.
    let lane = |j: usize| -> f64 {
        let (wi, bit) = (j / 64, j % 64);
        let in_u = (uw.get(wi).copied().unwrap_or(0) >> bit & 1) as f64;
        let in_v = (vw.get(wi).copied().unwrap_or(0) >> bit & 1) as f64;
        let c_rep = in_u * g_u + in_v * g_v;
        let c_bal = (max_load - loads[j] as f64) / bal_denom;
        let score = c_rep + lambda * c_bal;
        // At-capacity partitions score -inf: they can never win the max
        // scan, and `(-inf) - best` is never within the tie epsilon.
        if loads[j] < capacity {
            score
        } else {
            f64::NEG_INFINITY
        }
    };
    let mut j = 0;
    while j + SCORE_LANES <= p {
        let s0 = lane(j);
        let s1 = lane(j + 1);
        let s2 = lane(j + 2);
        let s3 = lane(j + 3);
        scores[j] = s0;
        scores[j + 1] = s1;
        scores[j + 2] = s2;
        scores[j + 3] = s3;
        j += SCORE_LANES;
    }
    while j < p {
        scores[j] = lane(j);
        j += 1;
    }
    // Best score and tie count over the filled buffer (ascending order,
    // same epsilon as the sequential kernel). `NaN <= eps` is false, so
    // an all-at-capacity buffer (best stays -inf) leaves `tied == 0`.
    let mut best_score = f64::NEG_INFINITY;
    let mut tied = 0u64;
    for &score in scores.iter() {
        if score > best_score + 1e-12 {
            best_score = score;
            tied = 1;
        } else if (score - best_score).abs() <= 1e-12 {
            tied += 1;
        }
    }
    if tied == 0 {
        return None;
    }
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for (m, &score) in scores.iter().enumerate() {
        if (score - best_score).abs() <= 1e-12 {
            if seen == pick {
                return Some(PartitionId(m as u32));
            }
            seen += 1;
        }
    }
    unreachable!("pick < tied count")
}

/// Oblivious's Appendix-A case analysis as a pure function of the visible
/// state — the snapshot-scoring analogue of `oblivious_choose`. The
/// intersection/union cases are word-wise AND/OR over the bitset words and
/// the least-loaded fallbacks run the lane-unrolled min reduction.
pub(crate) fn oblivious_score(
    loads: &[u64],
    capacity: u64,
    au: &PartitionSet,
    av: &PartitionSet,
    rng: &mut Splitmix64,
) -> PartitionId {
    let inter = au.intersection(av);
    let choice = if !inter.is_empty() {
        least_loaded_in(loads, &inter, rng)
    } else if au.is_empty() && av.is_empty() {
        least_loaded_all(loads, rng)
    } else if av.is_empty() {
        least_loaded_in(loads, au, rng)
    } else if au.is_empty() {
        least_loaded_in(loads, av, rng)
    } else {
        least_loaded_in(loads, &au.union(av), rng)
    };
    if loads[choice.index()] >= capacity {
        least_loaded_all(loads, rng)
    } else {
        choice
    }
}

/// One strategy's view of the windowed driver: pure scoring functions over
/// the committed state (frozen-snapshot and live variants), a capacity
/// guard, a commit, and a deferred end-of-window degree merge.
pub(crate) trait WindowKernel: Sync {
    /// Number of partitions scored (sizes the [`ScoreScratch`]).
    fn partitions(&self) -> usize;

    /// Called once per window, before any speculation: cache whatever load
    /// aggregates the frozen-state score reads (max/min load, capacity).
    /// The committed state does not change between here and the repair
    /// walk, so the cache equals a per-edge recomputation — it just lifts
    /// two O(p) scans per edge out of the speculation hot loop.
    fn begin_window(&mut self) {}

    /// Score edge `e` (stream index `idx`) against the window-start
    /// snapshot. Must be a pure read: it is called concurrently by
    /// speculation workers. May read aggregates cached by
    /// [`Self::begin_window`].
    fn score_frozen(&self, e: Edge, idx: usize, scratch: &mut ScoreScratch) -> PartitionId;

    /// Score edge `e` against the live mid-window state (the repair
    /// re-score for conflicted edges). Same pure function as
    /// [`Self::score_frozen`], but all aggregates are recomputed from the
    /// live loads.
    fn score_live(&self, e: Edge, idx: usize, scratch: &mut ScoreScratch) -> PartitionId;

    /// True when the live load of `p` disqualifies a speculative placement.
    fn over_capacity(&self, p: PartitionId) -> bool;

    /// Commit `e -> p`: loads, replica sets, work accounting.
    fn apply(&mut self, e: Edge, p: PartitionId);

    /// Fold the committed window's endpoint touches into deferred state
    /// (degree counters), called after the whole window has committed —
    /// degree counters are frozen for the duration of a window by design.
    fn end_window(&mut self, _edges: &[Edge]) {}

    /// Simulated work units burned by this loader so far.
    fn work(&self) -> f64;

    /// Peak strategy-private state estimate for ingress memory accounting.
    fn state_bytes(&self, num_vertices: u64, stats: &SpecStats) -> u64;
}

/// Drive one loader block through the windowed speculate/repair/merge
/// cycle, appending placements to `parts` in stream order. `window` is the
/// raw context value — a fixed size or [`WINDOW_AUTO`].
#[allow(clippy::too_many_arguments)] // one slot per piece of per-block state
pub(crate) fn run_windowed<K: WindowKernel>(
    graph: &dyn StreamingEdges,
    block: Range<usize>,
    window: u32,
    par: &ParConfig,
    kernel: &mut K,
    stamp: &mut StampSet,
    parts: &mut Vec<PartitionId>,
    stats: &mut SpecStats,
) {
    debug_assert!(
        window >= 2,
        "window <= 1 dispatches to the sequential kernel"
    );
    let mut ctl = WindowController::new(window);
    let slice = graph.as_edge_slice();
    // Reused across windows: the spill buffer for non-memory sources (the
    // in-memory fast path scores straight off the stream's slice) and the
    // speculative-choice buffer the workers fill in place.
    let mut buf: Vec<Edge> = Vec::new();
    let mut spec: Vec<PartitionId> = Vec::new();
    let mut repair_scratch = ScoreScratch::new(kernel.partitions());
    let mut start = block.start;
    while start < block.end {
        let end = (start + ctl.current()).min(block.end);
        let wrange = start..end;
        let edges: &[Edge] = match slice {
            Some(s) => &s[wrange.clone()],
            None => {
                buf.clear();
                for_each_edge(graph, wrange.clone(), |e| buf.push(e));
                &buf
            }
        };
        // Phase 1+2: speculative scoring against the window-start snapshot.
        // Choices land in stream order in the pre-sized `spec` buffer; each
        // chunk carries its own scoring scratch, reused for every edge it
        // scores.
        kernel.begin_window();
        spec.clear();
        spec.resize(edges.len(), PartitionId(0));
        let k: &K = kernel;
        gp_par::fill_chunks(par, &mut spec, |_, r, out| {
            let mut scratch = ScoreScratch::new(k.partitions());
            for (slot, i) in out.iter_mut().zip(r) {
                *slot = k.score_frozen(edges[i], wrange.start + i, &mut scratch);
            }
        });
        // Phase 3: sequential conflict repair + commit, in stream order. An
        // edge keeps its speculative placement iff its score inputs are
        // intact: no earlier edge in this window touched either endpoint
        // and the chosen partition is still under the live capacity cap.
        stamp.advance();
        let mut repaired = 0u64;
        for (i, &provisional) in spec.iter().enumerate() {
            let e = edges[i];
            let clean = !stamp.contains(e.src)
                && !stamp.contains(e.dst)
                && !kernel.over_capacity(provisional);
            let p = if clean {
                provisional
            } else {
                repaired += 1;
                kernel.score_live(e, wrange.start + i, &mut repair_scratch)
            };
            kernel.apply(e, p);
            stamp.mark(e.src);
            stamp.mark(e.dst);
            parts.push(p);
        }
        // Phase 4: deferred degree merge over the committed window.
        kernel.end_window(edges);
        let committed = edges.len();
        stats.windows += 1;
        stats.speculated += committed as u64 - repaired;
        stats.repaired += repaired;
        stats.max_window = stats.max_window.max(committed as u64);
        ctl.observe(committed, repaired, stats);
        start = end;
    }
}

/// Run every loader block of a windowed stateful strategy and fold the
/// results in block order: the shared driver behind HDRF's and Oblivious's
/// `window >= 2` paths. Each block is a pure function of its own edge
/// range — own kernel (from `make_kernel`), own stamp set, own window
/// schedule — so when the context enables overlap and real threads are
/// available, blocks run on the bounded two-stage
/// [`gp_par::pipeline_ordered`]: block `N+1` speculates while block `N`'s
/// repair walk commits and its output is folded. Consumption order is
/// block order either way, which is why `overlap` on/off (and any thread
/// count) produces byte-identical placements.
pub(crate) fn partition_windowed_blocks<K, F>(
    graph: &dyn StreamingEdges,
    ctx: &PartitionContext,
    make_kernel: F,
) -> (Vec<PartitionId>, Vec<f64>, u64, SpecStats)
where
    K: WindowKernel,
    F: Fn(usize) -> K + Sync,
{
    let blocks = loader_ranges(graph.num_edges(), ctx.num_loaders);
    let n = graph.num_vertices() as usize;
    let run_block = |i: usize, block: Range<usize>| {
        let mut kernel = make_kernel(i);
        let mut stamp = StampSet::new(n);
        let mut parts = Vec::with_capacity(block.len());
        let mut stats = SpecStats::default();
        run_windowed(
            graph,
            block,
            ctx.window,
            &ctx.par,
            &mut kernel,
            &mut stamp,
            &mut parts,
            &mut stats,
        );
        let bytes = kernel.state_bytes(graph.num_vertices(), &stats);
        (parts, kernel.work(), bytes, stats)
    };
    let mut parts = Vec::with_capacity(graph.num_edges());
    let mut loader_work = Vec::with_capacity(blocks.len());
    let mut state_bytes = 0u64;
    let mut stats = SpecStats::default();
    let mut consume =
        |(block_parts, work, bytes, block_stats): (Vec<PartitionId>, f64, u64, SpecStats)| {
            parts.extend(block_parts);
            loader_work.push(work);
            state_bytes = state_bytes.max(bytes);
            stats.absorb(block_stats);
        };
    if ctx.overlap && ctx.par.is_parallel() && blocks.len() > 1 {
        let run_block = &run_block;
        let tasks: Vec<_> = blocks
            .into_iter()
            .enumerate()
            .map(|(i, block)| move || run_block(i, block))
            .collect();
        gp_par::pipeline_ordered(PIPELINE_DEPTH, tasks, |_, r| consume(r));
    } else {
        for (i, block) in blocks.into_iter().enumerate() {
            consume(run_block(i, block));
        }
    }
    (parts, loader_work, state_bytes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::EdgeList;

    #[test]
    fn stamp_set_separates_windows() {
        let mut s = StampSet::new(4);
        s.advance();
        s.mark(VertexId(1));
        assert!(s.contains(VertexId(1)));
        assert!(!s.contains(VertexId(0)));
        s.advance();
        assert!(!s.contains(VertexId(1)), "new window unmarks everything");
    }

    #[test]
    fn sharded_degrees_match_sequential_at_every_thread_count() {
        let g = gp_gen::barabasi_albert(500, 4, 11);
        let seq = g.degrees();
        for threads in [1u32, 2, 4, 7] {
            let par = sharded_degree_table(&g, &ParConfig::new(threads));
            for v in 0..g.num_vertices() {
                let v = VertexId(v);
                assert_eq!(par.in_degree(v), seq.in_degree(v), "threads={threads}");
                assert_eq!(par.out_degree(v), seq.out_degree(v), "threads={threads}");
            }
        }
    }

    #[test]
    fn edge_rng_is_stable_per_index() {
        let a = edge_rng(42, 7).next_u64();
        let b = edge_rng(42, 7).next_u64();
        let c = edge_rng(42, 8).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pure_least_loaded_matches_greedy_state() {
        use crate::strategies::oblivious::GreedyState;
        let loads = vec![3u64, 1, 1, 5];
        let mut st = GreedyState::new(4, 8, 99);
        st.load = loads.clone();
        let mut rng = Splitmix64::new(99);
        // Same seed, same draw sequence, same tie order.
        assert_eq!(least_loaded_all(&loads, &mut rng), st.least_loaded_all());
        let cands = {
            let mut s = PartitionSet::new();
            s.insert(0);
            s.insert(3);
            s
        };
        assert_eq!(
            least_loaded_in(&loads, &cands, &mut rng),
            st.least_loaded_in(&cands)
        );
    }

    #[test]
    fn lane_unrolled_least_loaded_handles_all_lengths() {
        // Lengths straddling the 4-lane boundary: the unrolled reduction
        // must agree with a plain scalar argmin + same-tie pick.
        for p in 1..=11usize {
            let loads: Vec<u64> = (0..p).map(|i| ((i * 7 + 3) % 5) as u64).collect();
            let got = least_loaded_all(&loads, &mut Splitmix64::new(1));
            let min = *loads.iter().min().unwrap();
            let tied: Vec<usize> = (0..p).filter(|&i| loads[i] == min).collect();
            let pick = Splitmix64::new(1).next_below(tied.len() as u64) as usize;
            assert_eq!(got, PartitionId(tied[pick] as u32), "p={p}");
        }
    }

    #[test]
    fn fixed_controller_never_moves() {
        let mut stats = SpecStats::default();
        let mut ctl = WindowController::new(4096);
        assert_eq!(ctl.current(), 4096);
        ctl.observe(4096, 4096, &mut stats); // 100% repair rate
        assert_eq!(ctl.current(), 4096, "fixed windows ignore the repair rate");
        assert_eq!(stats.shrinks, 0);
    }

    #[test]
    fn adaptive_controller_grows_on_clean_windows() {
        let mut stats = SpecStats::default();
        let mut ctl = WindowController::new(WINDOW_AUTO);
        assert_eq!(ctl.current(), WindowController::INITIAL);
        let mut w = ctl.current();
        for _ in 0..32 {
            ctl.observe(w, 0, &mut stats);
            w = ctl.current();
        }
        assert_eq!(w, WindowController::MAX, "clean stream must reach the cap");
        assert_eq!(stats.shrinks, 0);
    }

    #[test]
    fn adaptive_controller_shrinks_on_conflict_storms_to_the_floor() {
        let mut stats = SpecStats::default();
        let mut ctl = WindowController::new(WINDOW_AUTO);
        let mut w = ctl.current();
        for _ in 0..32 {
            ctl.observe(w, w as u64, &mut stats); // every edge repaired
            w = ctl.current();
        }
        assert_eq!(w, WindowController::MIN, "storm must reach the floor");
        assert!(stats.shrinks >= 1, "shrinks must be counted");
    }

    #[test]
    fn adaptive_controller_holds_in_the_dead_band() {
        let mut stats = SpecStats::default();
        let mut ctl = WindowController::new(WINDOW_AUTO);
        let w = ctl.current();
        // Repair rate between the thresholds: hold steady.
        ctl.observe(1000, 250, &mut stats);
        assert_eq!(ctl.current(), w);
        assert_eq!(stats.shrinks, 0);
    }

    #[test]
    fn spec_stats_absorb_tracks_extrema() {
        let mut a = SpecStats {
            windows: 1,
            speculated: 10,
            repaired: 2,
            max_window: 512,
            shrinks: 0,
        };
        let b = SpecStats {
            windows: 2,
            speculated: 5,
            repaired: 5,
            max_window: 2048,
            shrinks: 3,
        };
        a.absorb(b);
        assert_eq!(a.windows, 3);
        assert_eq!(a.max_window, 2048);
        assert_eq!(a.shrinks, 3);
        assert!((a.repair_rate() - 7.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_yields_no_windows() {
        let g = EdgeList::from_pairs(Vec::new());
        assert_eq!(sharded_degree_table(&g, &ParConfig::new(4)).len(), 0);
        assert!(gp_par::window_ranges(0..g.num_edges(), 8).is_empty());
    }
}
