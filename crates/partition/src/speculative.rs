//! Windowed speculative ingress for the stateful greedy partitioners.
//!
//! HDRF and Oblivious assign each edge by scoring it against state mutated
//! by every previous edge — an inherently sequential loop that caps ingress
//! at ~4.4M edges/s while the stateless hash families stream at 50M+. This
//! module breaks that wall with *bounded speculation*:
//!
//! 1. **Window.** Each loader's edge block is cut into fixed windows of `W`
//!    edges ([`gp_par::window_ranges`] — a pure function of the block and
//!    `W`, never of the thread count).
//! 2. **Speculate.** `gp-par` workers score all `W` edges in parallel
//!    against a read-only snapshot of the loader state as of the window
//!    start (replica [`PartitionSet`]s, per-partition loads, degree
//!    counters). Scoring is word-wise over the bitset words — membership of
//!    64 partitions per AND/shift — and each edge draws tie-breaks from its
//!    own [`Splitmix64`] seeded by the *stream index*, so a score depends
//!    only on `(committed state, edge, index)`, never on chunk boundaries.
//!    Workers with degree state also fold their chunk's endpoint touches
//!    into a thread-local degree shard.
//! 3. **Repair.** A sequential pass walks the window in stream order and
//!    commits each edge. A speculative choice is kept iff its score inputs
//!    are unchanged: neither endpoint was touched earlier in the same
//!    window (replica sets unchanged) and the chosen partition is still
//!    under the live capacity cap. Otherwise the edge is re-scored — same
//!    pure function, live sets/loads — so only conflicted edges pay the
//!    sequential cost.
//! 4. **Merge.** Degree shards merge into the loader's counters *in chunk
//!    order* (ordered reduction: integer elementwise addition is
//!    chunking-invariant), after the window commits.
//!
//! ## Determinism and the quality-parity contract
//!
//! The committed output is a pure function of `(graph, seed, partitions,
//! loaders, window)`: window boundaries, per-edge RNGs, the stream-order
//! repair walk and the ordered shard merge are all independent of
//! `--threads`, so any thread count yields byte-identical placements —
//! `threads == 1` simply runs the speculation loop inline.
//!
//! The output is **not** byte-identical to the sequential kernel (`window
//! == 0`): repaired edges legitimately re-draw tie-breaks, degree counters
//! are frozen per window (an edge's θ sees previous windows plus its own
//! endpoints, not same-window predecessors), and pure balance drift within
//! a window is deliberately not treated as a conflict. Those deviations are
//! bounded by the window length and gated by the `stateful_parity` suite:
//! replication factor and balance within 5% of the sequential kernel, and
//! `window <= 1` dispatches to the sequential code path, byte-identical by
//! construction.

use gp_core::{
    for_each_edge, DegreeTable, Edge, PartitionId, PartitionSet, Splitmix64, StreamingEdges,
    VertexId,
};
use gp_par::ParConfig;
use std::ops::Range;

/// Counters describing one windowed run (exported as `par.spec_*`
/// telemetry): windows processed, speculative placements kept, and
/// placements re-scored by the repair pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecStats {
    /// Windows processed across all loader blocks.
    pub windows: u64,
    /// Edges whose speculative placement was committed unchanged.
    pub speculated: u64,
    /// Edges re-scored by the sequential repair pass.
    pub repaired: u64,
}

impl SpecStats {
    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: SpecStats) {
        self.windows += other.windows;
        self.speculated += other.speculated;
        self.repaired += other.repaired;
    }
}

/// O(1) membership over `0..n` vertices with O(1) whole-set clear: each
/// vertex carries the id of the last window that touched it. Avoids an
/// O(n/64) bitset clear per window, which would dominate at small `W`.
pub(crate) struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    pub fn new(n: usize) -> Self {
        StampSet {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Start a new window: every vertex becomes unmarked. Handles epoch
    /// wrap-around (once per 2^32 windows) by a full reset.
    pub fn advance(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    #[inline]
    pub fn mark(&mut self, v: VertexId) {
        self.stamp[v.index()] = self.epoch;
    }
}

/// The per-edge tie-break RNG of the windowed kernels: a fresh
/// [`Splitmix64`] keyed by `(loader seed, stream index)`. Giving every edge
/// its own stream (instead of the sequential kernel's single shared stream)
/// is what lets speculation and repair score the same edge identically no
/// matter which worker — or which pass — evaluates it.
#[inline]
pub(crate) fn edge_rng(seed: u64, global_idx: usize) -> Splitmix64 {
    Splitmix64::new(gp_core::hash_u64(global_idx as u64, seed))
}

/// Per-vertex in/out degrees computed in parallel: each chunk counts into a
/// thread-local [`DegreeTable`] shard, shards merge in chunk order.
/// Elementwise integer addition is chunking-invariant, so the result is
/// byte-identical to [`gp_core::EdgeList::degrees`] at every thread count —
/// property-tested in `crates/partition/tests/shard_merge.rs`.
pub fn sharded_degree_table(graph: &dyn StreamingEdges, par: &ParConfig) -> DegreeTable {
    let n = graph.num_vertices() as usize;
    let mut shards = gp_par::map_chunks(par, graph.num_edges(), |_, range| {
        let mut shard = DegreeTable::zeroed(n);
        for_each_edge(graph, range, |e| shard.record(e));
        shard
    });
    if shards.len() == 1 {
        return shards.pop().expect("one shard");
    }
    let mut table = DegreeTable::zeroed(n);
    for shard in &shards {
        table.merge_from(shard);
    }
    table
}

/// Least-loaded partition over all partitions, ties broken uniformly with
/// `rng` (one draw over ascending order) — the pure-function analogue of
/// `GreedyState::least_loaded_all` for snapshot scoring.
pub(crate) fn least_loaded_all(loads: &[u64], rng: &mut Splitmix64) -> PartitionId {
    let min = *loads.iter().min().expect("partitions > 0");
    let tied = loads.iter().filter(|&&l| l == min).count() as u64;
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for (c, &l) in loads.iter().enumerate() {
        if l == min {
            if seen == pick {
                return PartitionId(c as u32);
            }
            seen += 1;
        }
    }
    unreachable!("pick < tied count")
}

/// Least-loaded partition among a non-empty candidate set, ties broken
/// uniformly with `rng` over ascending bit order — the pure-function
/// analogue of `GreedyState::least_loaded_in`.
pub(crate) fn least_loaded_in(
    loads: &[u64],
    candidates: &PartitionSet,
    rng: &mut Splitmix64,
) -> PartitionId {
    let min = candidates
        .iter()
        .map(|c| loads[c as usize])
        .min()
        .expect("non-empty candidate set");
    let tied = candidates
        .iter()
        .filter(|&c| loads[c as usize] == min)
        .count() as u64;
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for c in candidates.iter() {
        if loads[c as usize] == min {
            if seen == pick {
                return PartitionId(c);
            }
            seen += 1;
        }
    }
    unreachable!("pick < tied count")
}

/// HDRF's Appendix-B score as a pure function of the visible state, with
/// membership read word-wise off the replica-bitset words. Per 64-partition
/// word pair, `c_rep` takes one of four class values (`both`, `u`-only,
/// `v`-only, `none`) selected by two shifts — no `contains` probes, no
/// branches the vectorizer can't lower to masks. Returns `None` when every
/// partition is at capacity (caller falls back to least-loaded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hdrf_score(
    loads: &[u64],
    capacity: u64,
    au: &PartitionSet,
    av: &PartitionSet,
    theta_u: f64,
    theta_v: f64,
    lambda: f64,
    rng: &mut Splitmix64,
) -> Option<PartitionId> {
    let p = loads.len();
    let max_load = *loads.iter().max().expect("partitions > 0") as f64;
    let min_load = *loads.iter().min().expect("partitions > 0") as f64;
    const EPS: f64 = 1.0;
    let g_u = 1.0 + (1.0 - theta_u);
    let g_v = 1.0 + (1.0 - theta_v);
    let uw = au.words();
    let vw = av.words();
    let bal_denom = EPS + max_load - min_load;
    let score_at = |m: usize| -> Option<f64> {
        if loads[m] >= capacity {
            return None;
        }
        let (wi, bit) = (m / 64, m % 64);
        // Inline sets always carry 4 words; vertices never placed past
        // partition 255 read membership 0 beyond them, as they must.
        let in_u = uw.get(wi).copied().unwrap_or(0) >> bit & 1;
        let in_v = vw.get(wi).copied().unwrap_or(0) >> bit & 1;
        let c_rep = in_u as f64 * g_u + in_v as f64 * g_v;
        let c_bal = (max_load - loads[m] as f64) / bal_denom;
        Some(c_rep + lambda * c_bal)
    };
    // Pass 1: best score and tie count (same 1e-12 epsilon as the
    // sequential kernel). Pass 2: pick the `rng`-drawn tied candidate in
    // ascending order. Two passes instead of a tie buffer keeps the score
    // function allocation-free, so speculation workers need no scratch.
    let mut best_score = f64::NEG_INFINITY;
    let mut tied = 0u64;
    for m in 0..p {
        if let Some(score) = score_at(m) {
            if score > best_score + 1e-12 {
                best_score = score;
                tied = 1;
            } else if (score - best_score).abs() <= 1e-12 {
                tied += 1;
            }
        }
    }
    if tied == 0 {
        return None;
    }
    let pick = rng.next_below(tied);
    let mut seen = 0;
    for m in 0..p {
        if let Some(score) = score_at(m) {
            if (score - best_score).abs() <= 1e-12 {
                if seen == pick {
                    return Some(PartitionId(m as u32));
                }
                seen += 1;
            }
        }
    }
    unreachable!("pick < tied count")
}

/// Oblivious's Appendix-A case analysis as a pure function of the visible
/// state — the snapshot-scoring analogue of `oblivious_choose`.
pub(crate) fn oblivious_score(
    loads: &[u64],
    capacity: u64,
    au: &PartitionSet,
    av: &PartitionSet,
    rng: &mut Splitmix64,
) -> PartitionId {
    let inter = au.intersection(av);
    let choice = if !inter.is_empty() {
        least_loaded_in(loads, &inter, rng)
    } else if au.is_empty() && av.is_empty() {
        least_loaded_all(loads, rng)
    } else if av.is_empty() {
        least_loaded_in(loads, au, rng)
    } else if au.is_empty() {
        least_loaded_in(loads, av, rng)
    } else {
        least_loaded_in(loads, &au.union(av), rng)
    };
    if loads[choice.index()] >= capacity {
        least_loaded_all(loads, rng)
    } else {
        choice
    }
}

/// One strategy's view of the windowed driver: a pure scoring function over
/// the committed state, a capacity guard, a commit, and (for strategies
/// with degree state) shard accumulation plus ordered merge.
pub(crate) trait WindowKernel: Sync {
    /// Score edge `e` (stream index `idx`) against the committed state.
    /// Must be a pure read: it is called concurrently by speculation
    /// workers against the window-start snapshot, and again by the repair
    /// walk against live mid-window state for conflicted edges.
    fn score(&self, e: Edge, idx: usize) -> PartitionId;

    /// True when the live load of `p` disqualifies a speculative placement.
    fn over_capacity(&self, p: PartitionId) -> bool;

    /// Commit `e -> p`: loads, replica sets, work accounting.
    fn apply(&mut self, e: Edge, p: PartitionId);

    /// Fold `e`'s degree contribution into a speculation worker's shard.
    fn shard(&self, _e: Edge, _shard: &mut Vec<VertexId>) {}

    /// Merge the window's shards in chunk order (ordered reduction),
    /// called after the whole window has committed — degree counters are
    /// frozen for the duration of a window by design.
    fn merge_shards(&mut self, _shards: Vec<Vec<VertexId>>) {}
}

/// Drive one loader block through the windowed speculate/repair/merge
/// cycle, appending placements to `parts` in stream order.
pub(crate) fn run_windowed<K: WindowKernel>(
    graph: &dyn StreamingEdges,
    block: Range<usize>,
    window: usize,
    par: &ParConfig,
    kernel: &mut K,
    stamp: &mut StampSet,
    parts: &mut Vec<PartitionId>,
    stats: &mut SpecStats,
) {
    debug_assert!(window >= 2, "window <= 1 dispatches to the sequential kernel");
    let mut buf: Vec<Edge> = Vec::with_capacity(window.min(block.len()));
    for wrange in gp_par::window_ranges(block, window) {
        buf.clear();
        for_each_edge(graph, wrange.clone(), |e| buf.push(e));
        // Phase 1+2: speculative scoring against the window-start snapshot.
        // Placements concatenate in chunk order; degree shards are returned
        // per chunk for the ordered merge below.
        let k: &K = kernel;
        let edges = &buf;
        let scored = gp_par::map_chunks(par, edges.len(), |_, r| {
            let mut spec = Vec::with_capacity(r.len());
            let mut shard = Vec::new();
            for i in r {
                let e = edges[i];
                spec.push(k.score(e, wrange.start + i));
                k.shard(e, &mut shard);
            }
            (spec, shard)
        });
        // Phase 3: sequential conflict repair + commit, in stream order. An
        // edge keeps its speculative placement iff its score inputs are
        // intact: no earlier edge in this window touched either endpoint
        // and the chosen partition is still under the live capacity cap.
        stamp.advance();
        let mut shards = Vec::with_capacity(scored.len());
        let mut i = 0usize;
        for (spec, shard) in scored {
            for provisional in spec {
                let e = buf[i];
                let clean = !stamp.contains(e.src)
                    && !stamp.contains(e.dst)
                    && !kernel.over_capacity(provisional);
                let p = if clean {
                    stats.speculated += 1;
                    provisional
                } else {
                    stats.repaired += 1;
                    kernel.score(e, wrange.start + i)
                };
                kernel.apply(e, p);
                stamp.mark(e.src);
                stamp.mark(e.dst);
                parts.push(p);
                i += 1;
            }
            shards.push(shard);
        }
        // Phase 4: ordered degree-shard merge.
        kernel.merge_shards(shards);
        stats.windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::EdgeList;

    #[test]
    fn stamp_set_separates_windows() {
        let mut s = StampSet::new(4);
        s.advance();
        s.mark(VertexId(1));
        assert!(s.contains(VertexId(1)));
        assert!(!s.contains(VertexId(0)));
        s.advance();
        assert!(!s.contains(VertexId(1)), "new window unmarks everything");
    }

    #[test]
    fn sharded_degrees_match_sequential_at_every_thread_count() {
        let g = gp_gen::barabasi_albert(500, 4, 11);
        let seq = g.degrees();
        for threads in [1u32, 2, 4, 7] {
            let par = sharded_degree_table(&g, &ParConfig::new(threads));
            for v in 0..g.num_vertices() {
                let v = VertexId(v);
                assert_eq!(par.in_degree(v), seq.in_degree(v), "threads={threads}");
                assert_eq!(par.out_degree(v), seq.out_degree(v), "threads={threads}");
            }
        }
    }

    #[test]
    fn edge_rng_is_stable_per_index() {
        let a = edge_rng(42, 7).next_u64();
        let b = edge_rng(42, 7).next_u64();
        let c = edge_rng(42, 8).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pure_least_loaded_matches_greedy_state() {
        use crate::strategies::oblivious::GreedyState;
        let loads = vec![3u64, 1, 1, 5];
        let mut st = GreedyState::new(4, 8, 99);
        st.load = loads.clone();
        let mut rng = Splitmix64::new(99);
        // Same seed, same draw sequence, same tie order.
        assert_eq!(least_loaded_all(&loads, &mut rng), st.least_loaded_all());
        let cands = {
            let mut s = PartitionSet::new();
            s.insert(0);
            s.insert(3);
            s
        };
        assert_eq!(
            least_loaded_in(&loads, &cands, &mut rng),
            st.least_loaded_in(&cands)
        );
    }

    #[test]
    fn empty_graph_yields_no_windows() {
        let g = EdgeList::from_pairs(Vec::new());
        assert_eq!(sharded_degree_table(&g, &ParConfig::new(4)).len(), 0);
        assert!(gp_par::window_ranges(0..g.num_edges(), 8).is_empty());
    }
}
