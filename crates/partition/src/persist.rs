//! Saving and reloading partitionings.
//!
//! §5.4.3: "When a graph may be partitioned, saved to disk, and reused
//! later, such cases should be treated similar to the high compute/ingress
//! ratio case ... and lower replication factor should be the priority."
//! This module provides the save/reuse mechanism: a compact text format
//! holding the per-edge partition choices and per-vertex masters, so a
//! partitioning computed once (e.g. by a slow, high-quality strategy) can be
//! reloaded against the same edge stream without re-running the strategy.
//!
//! Format (line-oriented, `#`-comments allowed):
//!
//! ```text
//! distgraph-partition v1
//! partitions <P>
//! edges <M>
//! vertices <N>
//! e <p0> <p1> ... <pM-1>     (may repeat; chunks concatenate)
//! m <m0> <m1> ... <mN-1>     (may repeat; chunks concatenate)
//! ```

use crate::assignment::Assignment;
use gp_core::{CoreError, PartitionId, Result, StreamingEdges, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "distgraph-partition v1";
const CHUNK: usize = 4096;

/// Serialize an assignment.
pub fn write_assignment<W: Write>(assignment: &Assignment, mut w: W) -> Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "partitions {}", assignment.num_partitions())?;
    writeln!(w, "edges {}", assignment.num_edges())?;
    writeln!(w, "vertices {}", assignment.num_vertices())?;
    for chunk in assignment.edge_partitions().chunks(CHUNK) {
        let line: Vec<String> = chunk.iter().map(|p| p.0.to_string()).collect();
        writeln!(w, "e {}", line.join(" "))?;
    }
    let masters: Vec<String> = (0..assignment.num_vertices())
        .map(|v| assignment.master_of(VertexId(v)).0.to_string())
        .collect();
    for chunk in masters.chunks(CHUNK) {
        writeln!(w, "m {}", chunk.join(" "))?;
    }
    Ok(())
}

/// Save an assignment to a file.
pub fn save_assignment(assignment: &Assignment, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_assignment(assignment, std::io::BufWriter::new(file))
}

/// Deserialize an assignment against the edge stream it was computed for.
/// Fails if the stream's shape (edge/vertex counts) does not match.
pub fn read_assignment<R: Read>(graph: &dyn StreamingEdges, reader: R) -> Result<Assignment> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != MAGIC {
        return Err(CoreError::InvalidGraph(format!(
            "not a distgraph partition file (header {header:?})"
        )));
    }
    let mut partitions: Option<u32> = None;
    let mut edges_expected: Option<usize> = None;
    let mut vertices_expected: Option<u64> = None;
    let mut edge_parts: Vec<PartitionId> = Vec::new();
    let mut masters: Vec<PartitionId> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = |content: &str| CoreError::Parse {
            line: lineno + 2,
            content: content.to_string(),
        };
        let mut fields = trimmed.split_ascii_whitespace();
        match fields.next() {
            Some("partitions") => {
                partitions = Some(
                    fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad(trimmed))?,
                )
            }
            Some("edges") => {
                edges_expected = Some(
                    fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad(trimmed))?,
                )
            }
            Some("vertices") => {
                vertices_expected = Some(
                    fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad(trimmed))?,
                )
            }
            Some("e") => {
                for f in fields {
                    edge_parts.push(PartitionId(f.parse().map_err(|_| bad(f))?));
                }
            }
            Some("m") => {
                for f in fields {
                    masters.push(PartitionId(f.parse().map_err(|_| bad(f))?));
                }
            }
            _ => return Err(bad(trimmed)),
        }
    }
    let partitions =
        partitions.ok_or_else(|| CoreError::InvalidGraph("missing partitions header".into()))?;
    if edges_expected != Some(graph.num_edges()) || vertices_expected != Some(graph.num_vertices())
    {
        return Err(CoreError::InvalidGraph(format!(
            "partition file was computed for a different graph: file says \
             {edges_expected:?} edges / {vertices_expected:?} vertices, graph has {} / {}",
            graph.num_edges(),
            graph.num_vertices()
        )));
    }
    if edge_parts.len() != graph.num_edges() {
        return Err(CoreError::InvalidGraph(format!(
            "expected {} edge assignments, found {}",
            graph.num_edges(),
            edge_parts.len()
        )));
    }
    if let Some(bad) = edge_parts.iter().find(|p| p.0 >= partitions) {
        return Err(CoreError::InvalidGraph(format!(
            "edge partition {bad} out of range (< {partitions})"
        )));
    }
    let mut assignment = Assignment::from_edge_partitions(graph, edge_parts, partitions, 0);
    if !masters.is_empty() {
        if masters.len() != graph.num_vertices() as usize {
            return Err(CoreError::InvalidGraph(format!(
                "expected {} masters, found {}",
                graph.num_vertices(),
                masters.len()
            )));
        }
        // Tolerate master hints that are not replicas (e.g. isolated
        // vertices): fall back to the default pick.
        let sanitized: Vec<PartitionId> = masters
            .iter()
            .enumerate()
            .map(|(v, &m)| {
                let v = VertexId(v as u64);
                if assignment.replicas(v).is_empty()
                    || assignment.replicas(v).binary_search(&m.0).is_ok()
                {
                    m
                } else {
                    assignment.master_of(v)
                }
            })
            .collect();
        assignment.set_masters(sanitized);
    }
    Ok(assignment)
}

/// Load an assignment from a file.
pub fn load_assignment(graph: &dyn StreamingEdges, path: impl AsRef<Path>) -> Result<Assignment> {
    read_assignment(graph, std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{PartitionContext, Partitioner};
    use crate::strategies::{Hybrid, Random};
    use gp_core::EdgeList;

    fn graph() -> EdgeList {
        gp_gen::erdos_renyi(200, 1_500, 3)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = graph();
        let out = Hybrid::default().partition(&g, &PartitionContext::new(6));
        let mut buf = Vec::new();
        write_assignment(&out.assignment, &mut buf).unwrap();
        let loaded = read_assignment(&g, &buf[..]).unwrap();
        assert_eq!(loaded.num_partitions(), 6);
        assert_eq!(loaded.edge_partitions(), out.assignment.edge_partitions());
        for v in 0..g.num_vertices() {
            let v = VertexId(v);
            assert_eq!(loaded.master_of(v), out.assignment.master_of(v));
            assert_eq!(loaded.replicas(v), out.assignment.replicas(v));
        }
        assert!((loaded.replication_factor() - out.assignment.replication_factor()).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = graph();
        let out = Random.partition(&g, &PartitionContext::new(4));
        let mut buf = Vec::new();
        write_assignment(&out.assignment, &mut buf).unwrap();
        let other = gp_gen::erdos_renyi(200, 1_499, 4);
        let err = read_assignment(&other, &buf[..]).unwrap_err();
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn rejects_bad_header() {
        let g = graph();
        let err = read_assignment(&g, "not a partition file\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not a distgraph partition file"));
    }

    #[test]
    fn rejects_out_of_range_partitions() {
        let g = EdgeList::from_pairs(vec![(0, 1)]);
        let text = format!("{MAGIC}\npartitions 2\nedges 1\nvertices 2\ne 5\n");
        let err = read_assignment(&g, text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn file_roundtrip() {
        let g = graph();
        let out = Random.partition(&g, &PartitionContext::new(4));
        let dir = std::env::temp_dir().join("distgraph-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt");
        save_assignment(&out.assignment, &path).unwrap();
        let loaded = load_assignment(&g, &path).unwrap();
        assert_eq!(loaded.edge_partitions(), out.assignment.edge_partitions());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = EdgeList::from_pairs(vec![(0, 1), (1, 0)]);
        let text =
            format!("{MAGIC}\n# a comment\n\npartitions 2\nedges 2\nvertices 2\ne 0\ne 1\nm 0 1\n");
        let a = read_assignment(&g, text.as_bytes()).unwrap();
        assert_eq!(a.edge_partition(0), PartitionId(0));
        assert_eq!(a.edge_partition(1), PartitionId(1));
    }
}
