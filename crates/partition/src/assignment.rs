//! Edge→partition assignments and the statistics the paper derives from them.
//!
//! The central quality metric is the **replication factor** (§5.1.1): the
//! mean number of images (master + mirrors) per vertex. "Lower replication
//! factors are associated with lower communication overheads and faster
//! computation" — Figs 5.3–5.5 show the linear relationships, which our
//! engine models reproduce because network/memory accounting is driven by
//! the replica sets computed here.
//!
//! Replica storage is two-phase for speed. During the build, per-vertex
//! replica sets are [`PartitionSet`] inline bitsets — O(1) insert per edge
//! endpoint and a word-wise-OR shard merge on the parallel path (set union
//! is exactly what the sequential build computes, so chunking cannot change
//! the result). After the build the sets are **frozen** into a CSR-flattened
//! view (`rep_offsets` + `rep_flat`): one offsets array and one contiguous
//! sorted-id array instead of one heap `Vec` per vertex. All read paths
//! (`replicas`, masters, RF, counts) serve from that view; the bitsets stay
//! available for O(1) membership/rank queries (`replica_set`).

use gp_core::{for_each_edge, hash_u64, Edge, PartitionId, PartitionSet, StreamingEdges, VertexId};
use gp_par::ParConfig;

/// An edge→partition assignment plus derived replication structure.
#[derive(Debug, Clone)]
pub struct Assignment {
    num_partitions: u32,
    num_vertices: u64,
    /// Partition of each edge, aligned with the source edge stream.
    edge_partition: Vec<PartitionId>,
    /// Per-vertex replica bitsets (the build-time structure, kept for O(1)
    /// membership and popcount-rank slot lookups).
    replica_sets: Vec<PartitionSet>,
    /// Frozen CSR view: `rep_flat[rep_offsets[v]..rep_offsets[v+1]]` is the
    /// sorted partition list of vertex `v`.
    rep_offsets: Vec<u64>,
    rep_flat: Vec<u32>,
    /// Master partition of each vertex (meaningless for isolated vertices).
    masters: Vec<PartitionId>,
    /// Edges per partition.
    edge_counts: Vec<u64>,
}

impl Assignment {
    /// Build from per-edge partition choices. Masters are chosen
    /// pseudo-randomly among each vertex's replicas (PowerGraph's policy,
    /// §5.1.1) unless a strategy overrides them via
    /// [`Assignment::set_masters`].
    pub fn from_edge_partitions(
        graph: &dyn StreamingEdges,
        edge_partition: Vec<PartitionId>,
        num_partitions: u32,
        seed: u64,
    ) -> Self {
        Self::from_edge_partitions_par(
            graph,
            edge_partition,
            num_partitions,
            seed,
            &ParConfig::default(),
        )
    }

    /// Multi-threaded [`Assignment::from_edge_partitions`]: workers build
    /// thread-local replica-bitset/edge-count shards over disjoint edge
    /// chunks, merged pairwise in a reduction tree whose operators
    /// (word-wise OR, integer addition) are associative, commutative and
    /// insensitive to chunk boundaries — so the result is byte-identical to
    /// the sequential build at any thread count, while the merge itself
    /// runs in `log2(chunks)` parallel rounds instead of one sequential
    /// left fold (the fold was eating the whole stateless-ingress speedup:
    /// `chunks - 1` full O(n)-vertex merges on one thread).
    pub fn from_edge_partitions_par(
        graph: &dyn StreamingEdges,
        edge_partition: Vec<PartitionId>,
        num_partitions: u32,
        seed: u64,
        par: &ParConfig,
    ) -> Self {
        assert_eq!(
            edge_partition.len(),
            graph.num_edges(),
            "one partition per edge"
        );
        let n = graph.num_vertices() as usize;
        let build_shard = |range: std::ops::Range<usize>| {
            let mut sets: Vec<PartitionSet> = vec![PartitionSet::new(); n];
            let mut edge_counts = vec![0u64; num_partitions as usize];
            let mut i = range.start;
            for_each_edge(graph, range, |e| {
                let p = edge_partition[i];
                i += 1;
                debug_assert!(p.0 < num_partitions, "partition {p} out of range");
                edge_counts[p.index()] += 1;
                sets[e.src.index()].insert(p.0);
                sets[e.dst.index()].insert(p.0);
            });
            (sets, edge_counts)
        };
        let (replica_sets, edge_counts) = if par.is_parallel() {
            let mut shards =
                gp_par::map_chunks(par, graph.num_edges(), |_, range| build_shard(range));
            // Pairwise reduction tree: each round merges shard 2k+1 into
            // shard 2k, all pairs in parallel on the ordered pool. The merge
            // kernel is one word-wise OR per vertex plus an integer add per
            // partition — no allocation, no per-element branching.
            while shards.len() > 1 {
                let mut iter = shards.into_iter();
                let mut tasks = Vec::new();
                while let Some(left) = iter.next() {
                    let right = iter.next();
                    tasks.push(move || {
                        let (mut sets, mut counts) = left;
                        if let Some((right_sets, right_counts)) = right {
                            for (total, c) in counts.iter_mut().zip(right_counts) {
                                *total += c;
                            }
                            for (set, shard_set) in sets.iter_mut().zip(&right_sets) {
                                set.union_with(shard_set);
                            }
                        }
                        (sets, counts)
                    });
                }
                shards = gp_par::run_ordered(par.effective_threads(), tasks);
            }
            // An empty edge stream yields no chunks; fall back to an empty shard.
            shards.pop().unwrap_or_else(|| build_shard(0..0))
        } else {
            build_shard(0..graph.num_edges())
        };
        // Freeze the read side: one offsets array + one contiguous sorted-id
        // array, in place of a heap Vec per vertex.
        let total_images: usize = replica_sets.iter().map(|s| s.len() as usize).sum();
        let mut rep_offsets = Vec::with_capacity(n + 1);
        let mut rep_flat = Vec::with_capacity(total_images);
        rep_offsets.push(0u64);
        for set in &replica_sets {
            rep_flat.extend(set.iter());
            rep_offsets.push(rep_flat.len() as u64);
        }
        // Master choice is a pure per-vertex hash over the frozen view, so
        // it chunks freely across workers.
        let masters: Vec<PartitionId> = gp_par::map_chunks(par, n, |_, range| {
            range
                .map(|v| {
                    let lo = rep_offsets[v] as usize;
                    let hi = rep_offsets[v + 1] as usize;
                    default_master(VertexId(v as u64), seed, &rep_flat[lo..hi])
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Assignment {
            num_partitions,
            num_vertices: graph.num_vertices(),
            edge_partition,
            replica_sets,
            rep_offsets,
            rep_flat,
            masters,
            edge_counts,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Number of vertices in the underlying graph.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of edges assigned.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_partition.len()
    }

    /// Partition of the `i`-th edge of the source stream.
    #[inline]
    pub fn edge_partition(&self, i: usize) -> PartitionId {
        self.edge_partition[i]
    }

    /// All per-edge partitions, stream-aligned.
    #[inline]
    pub fn edge_partitions(&self) -> &[PartitionId] {
        &self.edge_partition
    }

    /// Partitions holding a replica of `v` (sorted, possibly empty for
    /// isolated vertices) — a slice of the frozen CSR view.
    #[inline]
    pub fn replicas(&self, v: VertexId) -> &[u32] {
        let lo = self.rep_offsets[v.index()] as usize;
        let hi = self.rep_offsets[v.index() + 1] as usize;
        &self.rep_flat[lo..hi]
    }

    /// The replica bitset of `v` — O(1) `contains` and popcount `rank`
    /// queries (the engine's replica-slot lookup).
    #[inline]
    pub fn replica_set(&self, v: VertexId) -> &PartitionSet {
        &self.replica_sets[v.index()]
    }

    /// Start of `v`'s slice in the flattened replica view; `replica_slot`
    /// indexes are relative to this.
    #[inline]
    pub fn replica_offset(&self, v: VertexId) -> usize {
        self.rep_offsets[v.index()] as usize
    }

    /// Slot of partition `p` within `v`'s sorted replica list, by popcount
    /// rank over the bitset — O(1), replacing binary search. `p` must be a
    /// replica of `v` (guaranteed for the partition of any edge incident to
    /// `v`, by construction).
    #[inline]
    pub fn replica_slot(&self, v: VertexId, p: PartitionId) -> usize {
        let set = &self.replica_sets[v.index()];
        debug_assert!(set.contains(p.0), "{p} does not host a replica of {v}");
        set.rank(p.0) as usize
    }

    /// Total number of vertex images (the length of the flattened view).
    #[inline]
    pub fn total_images(&self) -> usize {
        self.rep_flat.len()
    }

    /// Number of images (master + mirrors) of `v`.
    #[inline]
    pub fn replica_count(&self, v: VertexId) -> u32 {
        (self.rep_offsets[v.index() + 1] - self.rep_offsets[v.index()]) as u32
    }

    /// Master partition of `v`.
    #[inline]
    pub fn master_of(&self, v: VertexId) -> PartitionId {
        self.masters[v.index()]
    }

    /// Override master placement (used by Hybrid, which co-locates a
    /// low-degree vertex's master with its in-edges, §6.2.1). Each master
    /// must be one of the vertex's replicas.
    pub fn set_masters(&mut self, masters: Vec<PartitionId>) {
        assert_eq!(masters.len(), self.replica_sets.len());
        for (v, &m) in masters.iter().enumerate() {
            if !self.replica_sets[v].is_empty() {
                assert!(
                    self.replica_sets[v].contains(m.0),
                    "master {m} of v{v} is not a replica"
                );
            }
        }
        self.masters = masters;
    }

    /// Average number of images per vertex, over vertices with at least one
    /// image — the paper's headline partitioning-quality metric.
    pub fn replication_factor(&self) -> f64 {
        let (total, present) = self
            .rep_offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|&len| len > 0)
            .fold((0u64, 0u64), |(t, c), len| (t + len, c + 1));
        if present == 0 {
            0.0
        } else {
            total as f64 / present as f64
        }
    }

    /// Total number of mirrors (images that are not masters).
    pub fn total_mirrors(&self) -> u64 {
        self.rep_offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|&len| len > 0)
            .map(|len| len - 1)
            .sum()
    }

    /// Edges per partition.
    #[inline]
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// Vertex images per partition (masters + mirrors hosted) — one pass
    /// over the flattened view.
    pub fn replica_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_partitions as usize];
        for &p in &self.rep_flat {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Master vertices per partition.
    pub fn master_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_partitions as usize];
        for (w, &m) in self.rep_offsets.windows(2).zip(&self.masters) {
            if w[1] > w[0] {
                counts[m.index()] += 1;
            }
        }
        counts
    }

    /// Load-balance summary over edge counts.
    pub fn balance(&self) -> BalanceReport {
        BalanceReport::from_counts(&self.edge_counts)
    }
}

/// Max/mean load imbalance statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Largest per-partition count.
    pub max: u64,
    /// Smallest per-partition count.
    pub min: u64,
    /// Mean per-partition count.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced; the paper's "balanced
    /// partitions" requirement (§1) caps this.
    pub imbalance: f64,
}

impl BalanceReport {
    /// Summarize a per-partition count vector.
    pub fn from_counts(counts: &[u64]) -> Self {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        let mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<u64>() as f64 / counts.len() as f64
        };
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        BalanceReport {
            max,
            min,
            mean,
            imbalance,
        }
    }
}

/// PowerGraph's default master policy (§5.1.1): a pseudo-random pick among
/// the vertex's **sorted** replica list, keyed by vertex id and seed.
///
/// This is the exact formula the batch build uses, exported so the
/// serving-time incremental maintenance re-derives byte-identical masters
/// from its own replica sets. Vertices with no replicas report partition 0
/// (meaningless, matching the batch convention for isolated vertices).
pub fn default_master(v: VertexId, seed: u64, replicas: &[u32]) -> PartitionId {
    if replicas.is_empty() {
        PartitionId(0)
    } else {
        let pick = hash_u64(v.0, seed ^ 0x5EED_0F0A) as usize % replicas.len();
        PartitionId(replicas[pick])
    }
}

/// Convenience: partition every edge with a pure function of the edge.
/// Used by the stateless hash strategies.
pub fn assign_stateless(
    graph: &dyn StreamingEdges,
    num_partitions: u32,
    seed: u64,
    mut f: impl FnMut(Edge) -> PartitionId,
) -> Assignment {
    let mut parts: Vec<PartitionId> = Vec::with_capacity(graph.num_edges());
    for_each_edge(graph, 0..graph.num_edges(), |e| parts.push(f(e)));
    Assignment::from_edge_partitions(graph, parts, num_partitions, seed)
}

/// Multi-threaded [`assign_stateless`]: each worker streams a disjoint edge
/// chunk through the pure assignment function; per-chunk results concatenate
/// in chunk order, reproducing the sequential stream exactly.
pub fn assign_stateless_par(
    graph: &dyn StreamingEdges,
    num_partitions: u32,
    seed: u64,
    par: &ParConfig,
    f: impl Fn(Edge) -> PartitionId + Sync,
) -> Assignment {
    let mut parts: Vec<PartitionId> = vec![PartitionId(0); graph.num_edges()];
    gp_par::fill_chunks(par, &mut parts, |_, range, out| {
        let mut slot = 0usize;
        for_each_edge(graph, range, |e| {
            out[slot] = f(e);
            slot += 1;
        });
    });
    Assignment::from_edge_partitions_par(graph, parts, num_partitions, seed, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::EdgeList;

    fn tiny() -> EdgeList {
        EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (0, 3)])
    }

    fn assign_round_robin(graph: &EdgeList, parts: u32) -> Assignment {
        let v: Vec<PartitionId> = (0..graph.num_edges())
            .map(|i| PartitionId((i as u32) % parts))
            .collect();
        Assignment::from_edge_partitions(graph, v, parts, 1)
    }

    #[test]
    fn replicas_are_sorted_and_deduplicated() {
        let g = tiny();
        let a = assign_round_robin(&g, 2);
        for v in 0..g.num_vertices() {
            let r = a.replicas(VertexId(v));
            assert!(
                r.windows(2).all(|w| w[0] < w[1]),
                "replicas not sorted/unique: {r:?}"
            );
        }
    }

    #[test]
    fn single_partition_has_rf_one() {
        let g = tiny();
        let a = assign_round_robin(&g, 1);
        assert_eq!(a.replication_factor(), 1.0);
        assert_eq!(a.total_mirrors(), 0);
    }

    #[test]
    fn replication_factor_hand_computed() {
        // Edges (0,1),(1,2),(2,0),(0,3) round-robin over 2 partitions:
        // p0: (0,1),(2,0)  p1: (1,2),(0,3)
        // replicas: v0 {0,1}, v1 {0,1}, v2 {0,1}, v3 {1} → RF = 7/4
        let a = assign_round_robin(&tiny(), 2);
        assert!((a.replication_factor() - 1.75).abs() < 1e-12);
        assert_eq!(a.total_mirrors(), 3);
    }

    #[test]
    fn masters_are_replicas() {
        let g = tiny();
        let a = assign_round_robin(&g, 3);
        for v in 0..g.num_vertices() {
            let v = VertexId(v);
            if a.replica_count(v) > 0 {
                assert!(a.replicas(v).contains(&a.master_of(v).0));
            }
        }
    }

    #[test]
    fn master_counts_sum_to_present_vertices() {
        let g = tiny();
        let a = assign_round_robin(&g, 3);
        let sum: u64 = a.master_counts().iter().sum();
        assert_eq!(sum, 4);
    }

    #[test]
    fn replica_counts_sum_matches_total_images() {
        let g = tiny();
        let a = assign_round_robin(&g, 2);
        let images: u64 = a.replica_counts().iter().sum();
        let direct: u64 = (0..4).map(|v| a.replica_count(VertexId(v)) as u64).sum();
        assert_eq!(images, direct);
        assert_eq!(images, a.total_images() as u64);
    }

    #[test]
    fn replica_set_agrees_with_flattened_view() {
        let g = tiny();
        let a = assign_round_robin(&g, 3);
        for v in 0..g.num_vertices() {
            let v = VertexId(v);
            assert_eq!(a.replica_set(v).to_vec(), a.replicas(v));
            for (slot, &p) in a.replicas(v).iter().enumerate() {
                assert_eq!(a.replica_slot(v, PartitionId(p)), slot);
            }
        }
    }

    #[test]
    fn set_masters_validates_membership() {
        let g = tiny();
        let mut a = assign_round_robin(&g, 2);
        // v3 only lives on p1, so forcing master p1 everywhere it exists works:
        let forced: Vec<PartitionId> = (0..4)
            .map(|v| PartitionId(a.replicas(VertexId(v))[0]))
            .collect();
        a.set_masters(forced.clone());
        assert_eq!(a.master_of(VertexId(3)), forced[3]);
    }

    #[test]
    #[should_panic(expected = "not a replica")]
    fn set_masters_rejects_non_replica() {
        let g = EdgeList::from_pairs(vec![(0, 1)]);
        let mut a = Assignment::from_edge_partitions(&g, vec![PartitionId(0)], 2, 1);
        a.set_masters(vec![PartitionId(1), PartitionId(0)]);
    }

    #[test]
    fn balance_report_math() {
        let b = BalanceReport::from_counts(&[10, 20, 30]);
        assert_eq!(b.max, 30);
        assert_eq!(b.min, 10);
        assert!((b.mean - 20.0).abs() < 1e-12);
        assert!((b.imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn balance_of_empty_counts_is_neutral() {
        let b = BalanceReport::from_counts(&[]);
        assert_eq!(b.imbalance, 1.0);
    }

    #[test]
    fn isolated_vertices_do_not_skew_rf() {
        let g = EdgeList::with_vertex_count(vec![Edge::new(0u64, 1u64)], 10).unwrap();
        let a = Assignment::from_edge_partitions(&g, vec![PartitionId(0)], 4, 1);
        assert_eq!(a.replication_factor(), 1.0);
    }

    #[test]
    fn stateless_helper_applies_function() {
        let g = tiny();
        let a = assign_stateless(&g, 2, 1, |e| PartitionId((e.src.0 % 2) as u32));
        assert_eq!(a.edge_partition(0), PartitionId(0)); // (0,1)
        assert_eq!(a.edge_partition(1), PartitionId(1)); // (1,2)
    }
}
