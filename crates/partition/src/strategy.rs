//! The strategy catalog: Table 1.1 as code.

use crate::partitioner::Partitioner;
use crate::strategies::{
    AsymmetricRandom, Grid, Hdrf, Hybrid, HybridGinger, Oblivious, OneD, OneDTarget, Pds, Random,
    TwoD,
};

/// The three systems the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// PowerGraph (OSDI'12), chapter 5.
    PowerGraph,
    /// PowerLyra (EuroSys'15), chapter 6.
    PowerLyra,
    /// GraphX (OSDI'14), chapter 7.
    GraphX,
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            System::PowerGraph => "PowerGraph",
            System::PowerLyra => "PowerLyra",
            System::GraphX => "GraphX",
        };
        f.write_str(s)
    }
}

/// Every partitioning strategy in the thesis (Table 1.1 plus the ports of
/// chapters 8–9 and the new 1D-Target variant).
///
/// ```
/// use gp_partition::{PartitionContext, Strategy};
///
/// let graph = gp_core::EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
/// let ctx = PartitionContext::new(4).with_seed(7);
/// for strategy in [Strategy::Random, Strategy::Grid, Strategy::Oblivious] {
///     let outcome = strategy.build().partition(&graph, &ctx);
///     assert!(outcome.assignment.replication_factor() >= 1.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Canonical random edge hashing (PowerGraph "Random", GraphX
    /// "Canonical Random").
    Random,
    /// Directed random edge hashing (GraphX "Random"; "Assym-Rand" in §8).
    AsymmetricRandom,
    /// Constrained grid hashing.
    Grid,
    /// Constrained perfect-difference-set hashing.
    Pds,
    /// Greedy replication-minimizing heuristic.
    Oblivious,
    /// Greedy high-degree-replicated-first heuristic (λ = 1).
    Hdrf,
    /// Source-vertex hashing.
    OneD,
    /// Target-vertex hashing (the thesis's new variant, §8.2.3).
    OneDTarget,
    /// Source×target grid hashing.
    TwoD,
    /// PowerLyra differentiated hashing (threshold 100).
    Hybrid,
    /// Hybrid plus the Ginger/Fennel refinement phase.
    HybridGinger,
}

impl Strategy {
    /// Every strategy, in the order used by the chapter-8/9 figures.
    pub const ALL: [Strategy; 11] = [
        Strategy::OneD,
        Strategy::TwoD,
        Strategy::AsymmetricRandom,
        Strategy::Grid,
        Strategy::Hdrf,
        Strategy::Hybrid,
        Strategy::HybridGinger,
        Strategy::Oblivious,
        Strategy::Random,
        Strategy::OneDTarget,
        Strategy::Pds,
    ];

    /// PowerGraph's native set (Table 1.1): Random, Grid, Oblivious, HDRF, PDS.
    pub const POWERGRAPH: [Strategy; 5] = [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Oblivious,
        Strategy::Hdrf,
        Strategy::Pds,
    ];

    /// PowerLyra's native set (Table 1.1).
    pub const POWERLYRA: [Strategy; 6] = [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Oblivious,
        Strategy::Hybrid,
        Strategy::HybridGinger,
        Strategy::Pds,
    ];

    /// GraphX's native set (Table 1.1): Random, Canonical Random, 1D, 2D.
    pub const GRAPHX: [Strategy; 4] = [
        Strategy::AsymmetricRandom,
        Strategy::Random,
        Strategy::OneD,
        Strategy::TwoD,
    ];

    /// The nine strategies compared in the PowerLyra-all experiments (§8.2:
    /// everything except PDS, which the paper excludes for machine-count
    /// reasons, plus 1D-Target which is analyzed separately in Fig 8.3).
    pub const POWERLYRA_ALL: [Strategy; 9] = [
        Strategy::OneD,
        Strategy::TwoD,
        Strategy::AsymmetricRandom,
        Strategy::Grid,
        Strategy::Hdrf,
        Strategy::Hybrid,
        Strategy::HybridGinger,
        Strategy::Oblivious,
        Strategy::Random,
    ];

    /// Construct a boxed partitioner with the paper's default parameters.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            Strategy::Random => Box::new(Random),
            Strategy::AsymmetricRandom => Box::new(AsymmetricRandom),
            // The catalog builds the resilient Grid so sweeps over arbitrary
            // cluster sizes work; PowerGraph-specific experiments use
            // `Grid::strict()` directly.
            Strategy::Grid => Box::new(Grid::resilient()),
            Strategy::Pds => Box::new(Pds),
            Strategy::Oblivious => Box::new(Oblivious),
            Strategy::Hdrf => Box::new(Hdrf::recommended()),
            Strategy::OneD => Box::new(OneD),
            Strategy::OneDTarget => Box::new(OneDTarget),
            Strategy::TwoD => Box::new(TwoD),
            Strategy::Hybrid => Box::new(Hybrid::default()),
            Strategy::HybridGinger => Box::new(HybridGinger::default()),
        }
    }

    /// Figure label for this strategy.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Random => "Random",
            Strategy::AsymmetricRandom => "Assym-Rand",
            Strategy::Grid => "Grid",
            Strategy::Pds => "PDS",
            Strategy::Oblivious => "Oblivious",
            Strategy::Hdrf => "HDRF",
            Strategy::OneD => "1D",
            Strategy::OneDTarget => "1D-Target",
            Strategy::TwoD => "2D",
            Strategy::Hybrid => "Hybrid",
            Strategy::HybridGinger => "H-Ginger",
        }
    }

    /// Systems that ship this strategy natively (Table 1.1). The thesis's
    /// 1D-Target is native to none.
    pub fn native_systems(self) -> &'static [System] {
        match self {
            Strategy::Random => &[System::PowerGraph, System::PowerLyra, System::GraphX],
            Strategy::AsymmetricRandom | Strategy::OneD | Strategy::TwoD => &[System::GraphX],
            Strategy::Grid | Strategy::Pds | Strategy::Oblivious => {
                &[System::PowerGraph, System::PowerLyra]
            }
            Strategy::Hdrf => &[System::PowerGraph],
            Strategy::Hybrid | Strategy::HybridGinger => &[System::PowerLyra],
            Strategy::OneDTarget => &[],
        }
    }

    /// Whether the strategy can run on `n` partitions (Grid in the catalog is
    /// the resilient variant, so only PDS constrains the count).
    pub fn supports_partition_count(self, n: u32) -> bool {
        match self {
            Strategy::Pds => crate::strategies::Pds::order_for(n).is_some(),
            _ => n > 0,
        }
    }

    /// The Table 1.1 matrix: each system with its native strategies.
    pub fn catalog() -> Vec<(System, Vec<Strategy>)> {
        vec![
            (System::PowerGraph, Strategy::POWERGRAPH.to_vec()),
            (System::PowerLyra, Strategy::POWERLYRA.to_vec()),
            (System::GraphX, Strategy::GRAPHX.to_vec()),
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let found = Strategy::ALL
            .into_iter()
            .find(|st| st.label().to_ascii_lowercase() == lower);
        match (found, lower.as_str()) {
            (Some(st), _) => Ok(st),
            (None, "canonical-random" | "canonical random") => Ok(Strategy::Random),
            (None, "asymmetric-random" | "asym-rand") => Ok(Strategy::AsymmetricRandom),
            (None, "hybrid-ginger" | "ginger") => Ok(Strategy::HybridGinger),
            _ => Err(format!("unknown strategy {s:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::PartitionContext;

    #[test]
    fn catalog_matches_table_1_1() {
        let catalog = Strategy::catalog();
        assert_eq!(catalog.len(), 3);
        let (sys, pg) = &catalog[0];
        assert_eq!(*sys, System::PowerGraph);
        assert_eq!(pg.len(), 5);
        assert!(pg.contains(&Strategy::Hdrf));
        let (_, pl) = &catalog[1];
        assert_eq!(pl.len(), 6);
        assert!(pl.contains(&Strategy::HybridGinger));
        let (_, gx) = &catalog[2];
        assert_eq!(gx.len(), 4);
        assert!(gx.contains(&Strategy::TwoD));
    }

    #[test]
    fn every_strategy_builds_and_partitions() {
        let g = gp_gen::erdos_renyi(500, 3_000, 1);
        for s in Strategy::ALL {
            let n = if s == Strategy::Pds { 7 } else { 9 };
            let mut p = s.build();
            let out = p.partition(&g, &PartitionContext::new(n));
            assert_eq!(out.assignment.num_edges(), g.num_edges(), "{s}");
            assert!(out.assignment.replication_factor() >= 1.0, "{s}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Strategy::ALL.len());
    }

    #[test]
    fn from_str_accepts_labels_and_aliases() {
        assert_eq!("HDRF".parse::<Strategy>().unwrap(), Strategy::Hdrf);
        assert_eq!("hdrf".parse::<Strategy>().unwrap(), Strategy::Hdrf);
        assert_eq!(
            "1D-Target".parse::<Strategy>().unwrap(),
            Strategy::OneDTarget
        );
        assert_eq!(
            "ginger".parse::<Strategy>().unwrap(),
            Strategy::HybridGinger
        );
        assert_eq!(
            "canonical-random".parse::<Strategy>().unwrap(),
            Strategy::Random
        );
        assert!("bogus".parse::<Strategy>().is_err());
    }

    #[test]
    fn pds_partition_count_gate() {
        assert!(Strategy::Pds.supports_partition_count(7));
        assert!(Strategy::Pds.supports_partition_count(13));
        assert!(!Strategy::Pds.supports_partition_count(9));
        assert!(Strategy::Grid.supports_partition_count(10)); // resilient
    }

    #[test]
    fn native_systems_match_table() {
        assert_eq!(Strategy::Hdrf.native_systems(), &[System::PowerGraph]);
        assert!(Strategy::Random.native_systems().contains(&System::GraphX));
        assert!(Strategy::OneDTarget.native_systems().is_empty());
    }
}
