//! Generator → `gp-store` bridges: build on-disk stores without ever
//! materializing the full edge list.
//!
//! [`build_powerlaw_store`] streams a [`PowerLawStream`] record-by-record
//! into a [`StoreBuilder`], so peak memory is one adjacency buffer plus the
//! sampled offset index — a 100M-edge build stays in the tens of megabytes.
//! [`build_dataset_store`] is the convenience path for the Table 4.2
//! analogues, which are generated in memory (they are laptop-scale by
//! design) and then written in canonical order.

use crate::datasets::Dataset;
use crate::stream::{PowerLawStream, PowerLawStreamParams};
use gp_store::{write_edge_list_to_path, StoreBuilder, StoreError, StoreStats};
use std::io::BufWriter;
use std::path::Path;

/// Stream a power-law graph straight to a `.gps` file at `path`.
pub fn build_powerlaw_store(
    path: impl AsRef<Path>,
    params: PowerLawStreamParams,
    seed: u64,
) -> Result<StoreStats, StoreError> {
    let file = std::fs::File::create(path)?;
    let mut stream = PowerLawStream::new(params, seed);
    let mut builder = StoreBuilder::new(BufWriter::new(file), stream.num_vertices())?;
    let mut targets = Vec::new();
    while stream.next_vertex(&mut targets).is_some() {
        builder.append_vertex(&targets)?;
    }
    Ok(builder.finish()?)
}

/// Generate a Table 4.2 analogue at `scale` and write it as a store.
pub fn build_dataset_store(
    path: impl AsRef<Path>,
    dataset: Dataset,
    scale: f64,
    seed: u64,
) -> Result<StoreStats, StoreError> {
    let graph = dataset.generate(scale, seed);
    write_edge_list_to_path(path, &graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::StreamingEdges;
    use gp_store::GraphStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("distgraph-store-build-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn powerlaw_store_round_trips() {
        let path = tmp("pl.gps");
        let params = PowerLawStreamParams {
            num_vertices: 5_000,
            num_edges: 60_000,
            ..Default::default()
        };
        let stats = build_powerlaw_store(&path, params, 9).unwrap();
        assert_eq!(stats.num_edges, 60_000);
        let store = GraphStore::open(&path).unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.num_edges, 60_000);
        assert_eq!(store.num_vertices(), 5_000);
        // Streamed records must equal a fresh generator pass.
        let mut stream = PowerLawStream::new(params, 9);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        while let Some(v) = stream.next_vertex(&mut expected) {
            store.adjacency(v, &mut got);
            assert_eq!(got, expected, "adjacency mismatch at {v}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dataset_store_matches_generated_graph() {
        let path = tmp("lj.gps");
        let stats = build_dataset_store(&path, Dataset::LiveJournal, 0.02, 4).unwrap();
        let graph = Dataset::LiveJournal.generate(0.02, 4);
        assert_eq!(stats.num_edges as usize, graph.num_edges());
        let store = GraphStore::open(&path).unwrap();
        let mut sorted = graph.edges().to_vec();
        sorted.sort_unstable();
        assert_eq!(store.to_edge_list().edges(), &sorted[..]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compression_beats_raw_edges() {
        let path = tmp("ratio.gps");
        let stats = build_powerlaw_store(
            &path,
            PowerLawStreamParams {
                num_vertices: 10_000,
                num_edges: 200_000,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert!(
            stats.bytes_per_edge() < 8.0,
            "expected < 8 bytes/edge, got {:.2}",
            stats.bytes_per_edge()
        );
        std::fs::remove_file(path).ok();
    }
}
