//! Random-graph generators for the paper's three degree classes.
//!
//! All generators are deterministic given a seed and emit [`EdgeList`]s with
//! dense vertex ids. Edge streams are emitted **sorted by (source, dest)** —
//! the order the paper's real datasets have on disk (SNAP, DIMACS and LAW
//! edge lists are all source-sorted). Stream order matters: the greedy
//! streaming heuristics (Oblivious, HDRF) exploit exactly this locality, and
//! feeding them a randomly-shuffled stream would erase the road-network
//! advantage the paper measures for them (§5.4.2).

use gp_core::{Edge, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`road_network`].
#[derive(Debug, Clone)]
pub struct RoadNetworkParams {
    /// Grid width in junctions.
    pub width: u32,
    /// Grid height in junctions.
    pub height: u32,
    /// Probability each lattice link exists (1.0 = full grid). Dropping a few
    /// links produces the irregular blocks of a real road map.
    pub link_probability: f64,
    /// Number of long-range shortcut edges (highways) to add, as a fraction
    /// of lattice edges. Real road networks have a few.
    pub shortcut_fraction: f64,
    /// Emit each undirected road in both directions (the SNAP road graphs are
    /// symmetric).
    pub bidirectional: bool,
}

impl Default for RoadNetworkParams {
    fn default() -> Self {
        RoadNetworkParams {
            width: 200,
            height: 200,
            link_probability: 0.94,
            shortcut_fraction: 0.01,
            bidirectional: true,
        }
    }
}

/// Generate a road-network analogue: a 2-D lattice with missing links and a
/// few long-range shortcuts. Low bounded degree (≤ 4 lattice neighbors plus
/// rare shortcuts), high diameter — the signature of road-net-CA/USA.
///
/// ```
/// use gp_gen::{road_network, RoadNetworkParams};
/// let g = road_network(&RoadNetworkParams { width: 10, height: 10, ..Default::default() }, 1);
/// let stats = gp_core::GraphStats::compute(&g);
/// assert!(stats.max_in_degree <= 8);
/// ```
pub fn road_network(params: &RoadNetworkParams, seed: u64) -> EdgeList {
    assert!(
        params.width >= 2 && params.height >= 2,
        "grid must be at least 2x2"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = (params.width as u64, params.height as u64);
    let id = |x: u64, y: u64| -> u64 { y * w + x };
    let mut edges: Vec<Edge> = Vec::new();
    let push_road = |edges: &mut Vec<Edge>, a: u64, b: u64| {
        edges.push(Edge::new(a, b));
        if params.bidirectional {
            edges.push(Edge::new(b, a));
        }
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w && rng.random::<f64>() < params.link_probability {
                push_road(&mut edges, id(x, y), id(x + 1, y));
            }
            if y + 1 < h && rng.random::<f64>() < params.link_probability {
                push_road(&mut edges, id(x, y), id(x, y + 1));
            }
        }
    }
    let shortcuts = (edges.len() as f64 * params.shortcut_fraction) as usize;
    let n = w * h;
    for _ in 0..shortcuts {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            push_road(&mut edges, a, b);
        }
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("lattice ids are in range")
}

/// Generate a Barabási–Albert preferential-attachment graph: `n` vertices,
/// each new vertex attaching `m_attach` edges to existing vertices chosen
/// proportionally to degree.
///
/// Because every vertex arrives with `m_attach` edges, there are *no*
/// vertices of degree `< m_attach`: the low-degree head is depleted, which is
/// exactly the heavy-tailed (LiveJournal/Twitter) signature of Fig 5.8.
/// Edges are directed new→old, which makes old high-degree vertices collect
/// large in-degrees like celebrity accounts.
pub fn barabasi_albert(n: u64, m_attach: u32, seed: u64) -> EdgeList {
    barabasi_albert_reciprocal(n, m_attach, 0.0, seed)
}

/// [`barabasi_albert`] with a *reciprocity* fraction: each attachment edge
/// `v -> t` is mirrored as `t -> v` with the given probability. Real social
/// networks have substantial reciprocity (~22% of Twitter follows are
/// mutual; most LiveJournal friendships are), and reciprocity is what
/// separates canonical Random from Asymmetric Random (§8.2.2): without any
/// reciprocal pairs the two strategies are statistically identical.
pub fn barabasi_albert_reciprocal(n: u64, m_attach: u32, reciprocity: f64, seed: u64) -> EdgeList {
    assert!(m_attach >= 1, "attachment degree must be >= 1");
    assert!((0.0..=1.0).contains(&reciprocity), "reciprocity in [0,1]");
    assert!(
        n > m_attach as u64,
        "need more vertices than the attachment degree"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m_attach as usize;
    // `targets[i]` appears once per degree unit — classic BA urn.
    let mut urn: Vec<u64> = Vec::with_capacity(2 * m * n as usize);
    let mut edges: Vec<Edge> = Vec::with_capacity(m * n as usize);
    // Seed clique-ish core: vertex i (i < m_attach) chains to i+1.
    for i in 0..m as u64 {
        let j = (i + 1) % (m as u64 + 1);
        edges.push(Edge::new(i, j));
        urn.push(i);
        urn.push(j);
    }
    for v in (m as u64 + 1)..n {
        let mut chosen: Vec<u64> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let pick = urn[rng.random_range(0..urn.len())];
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            edges.push(Edge::new(v, t));
            if reciprocity > 0.0 && rng.random::<f64>() < reciprocity {
                edges.push(Edge::new(t, v));
            }
            urn.push(v);
            urn.push(t);
        }
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("BA ids are in range")
}

/// Generate a Chung–Lu graph with the given expected-degree weights. Each
/// edge `(i, j)` appears with probability `w_i * w_j / sum(w)` (clamped).
/// Used for custom degree-profile experiments.
pub fn chung_lu(weights: &[f64], seed: u64) -> EdgeList {
    let n = weights.len() as u64;
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut rng = StdRng::seed_from_u64(seed);
    // Efficient edge-skipping sampler over the weight-sorted order would be
    // O(m); for the modest sizes used in experiments an expected-edges
    // Bernoulli pass per vertex against a sampled candidate set suffices.
    // We approximate by sampling `round(total/2)` edges from the weight
    // distribution on both endpoints (the standard fast Chung–Lu sampler).
    let m = (total / 2.0).round() as usize;
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let sample = |rng: &mut StdRng, cumulative: &[f64]| -> u64 {
        let x = rng.random::<f64>() * total;
        match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i as u64).min(n - 1),
        }
    };
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = sample(&mut rng, &cumulative);
        let v = sample(&mut rng, &cumulative);
        if u != v {
            edges.push(Edge::new(u, v));
        }
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("CL ids are in range")
}

/// Parameters for [`rmat`]: the recursive quadrant probabilities.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Number of edges to generate.
    pub edges: usize,
    /// Quadrant probabilities; must sum to ~1. The classic skewed setting
    /// `(0.57, 0.19, 0.19, 0.05)` produces web-graph-like power laws.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// The classic web-graph parameterization (Graph500 uses the same).
    pub fn web_graph(scale: u32, edges: usize) -> Self {
        RmatParams {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// Generate an R-MAT graph. R-MAT with skewed quadrant probabilities yields
/// a power-law degree distribution *with the full low-degree head* — many
/// degree-0/1/2 vertices — which is the UK-web signature the paper contrasts
/// against Twitter/LiveJournal in Fig 5.8.
pub fn rmat(params: &RmatParams, seed: u64) -> EdgeList {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1, got {sum}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1u64 << params.scale;
    let mut edges = Vec::with_capacity(params.edges);
    for _ in 0..params.edges {
        let (mut x0, mut x1) = (0u64, n);
        let (mut y0, mut y1) = (0u64, n);
        while x1 - x0 > 1 {
            // Mild parameter noise per level (as in the original R-MAT paper)
            // avoids exactly repeated quadrant structure.
            let noise = 0.9 + 0.2 * rng.random::<f64>();
            let a = params.a * noise;
            let b = params.b * (2.0 - noise);
            let c = params.c * (2.0 - noise);
            let d = params.d * noise;
            let total = a + b + c + d;
            let r = rng.random::<f64>() * total;
            let (mx, my) = ((x0 + x1) / 2, (y0 + y1) / 2);
            if r < a {
                x1 = mx;
                y1 = my;
            } else if r < a + b {
                x0 = mx;
                y1 = my;
            } else if r < a + b + c {
                x1 = mx;
                y0 = my;
            } else {
                x0 = mx;
                y0 = my;
            }
        }
        edges.push(Edge::new(x0, y0));
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("R-MAT ids are in range")
}

/// Parameters for [`web_graph`].
#[derive(Debug, Clone)]
pub struct WebGraphParams {
    /// Number of web domains (hosts). Pages of a domain get contiguous ids,
    /// like the LAW/BV orderings of real crawls.
    pub domains: u64,
    /// Mean pages per domain (domain sizes are Pareto-distributed).
    pub mean_pages: f64,
    /// Probability an out-link stays inside its own domain. Real crawls are
    /// dominated by intra-host navigation links (~75%+).
    pub intra_link_probability: f64,
    /// Mean out-links per page (per-page out-degrees are Pareto-distributed).
    pub mean_out_degree: f64,
}

impl Default for WebGraphParams {
    fn default() -> Self {
        WebGraphParams {
            domains: 3_000,
            mean_pages: 40.0,
            intra_link_probability: 0.75,
            mean_out_degree: 11.0,
        }
    }
}

/// Generate a web-crawl analogue (the UK-web signature):
///
/// * **power-law in-degrees with a full low-degree head** — global links are
///   preferential-attachment, so hub pages collect huge in-degrees while
///   most pages keep in-degree 0–2 (the Fig 5.8 UK-web profile);
/// * **host locality** — pages of a domain have contiguous ids and ~75% of
///   links stay intra-domain, which is exactly the structure that lets the
///   greedy streaming heuristics (Oblivious/HDRF) co-locate whole domains
///   and beat the constrained hash strategies on web graphs (§5.4.2).
pub fn web_graph(params: &WebGraphParams, seed: u64) -> EdgeList {
    assert!(params.domains >= 2, "need at least two domains");
    let mut rng = StdRng::seed_from_u64(seed);
    // Pareto(alpha) sampler via inverse transform, capped.
    let pareto = |rng: &mut StdRng, min: f64, alpha: f64, cap: f64| -> f64 {
        let u: f64 = rng.random::<f64>().max(1e-12);
        (min / u.powf(1.0 / alpha)).min(cap)
    };
    // Domain sizes: Pareto(1.7) with the requested mean.
    let raw: Vec<f64> = (0..params.domains)
        .map(|_| pareto(&mut rng, 1.0, 1.7, 400.0))
        .collect();
    let raw_mean = raw.iter().sum::<f64>() / raw.len() as f64;
    let sizes: Vec<u64> = raw
        .iter()
        .map(|r| ((r / raw_mean * params.mean_pages).round() as u64).max(1))
        .collect();
    let starts: Vec<u64> = sizes
        .iter()
        .scan(0u64, |acc, &s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();
    let n: u64 = sizes.iter().sum();
    // Preferential-attachment urn for global links, seeded with each
    // domain's front page.
    let mut urn: Vec<u64> = starts.clone();
    let mut edges: Vec<Edge> = Vec::new();
    for (&start, &size) in starts.iter().zip(&sizes) {
        for page in start..start + size {
            let out_deg = pareto(&mut rng, params.mean_out_degree / 2.2, 2.0, 250.0).round() as u64;
            for _ in 0..out_deg {
                let intra = size > 1 && rng.random::<f64>() < params.intra_link_probability;
                let target = if intra {
                    // Intra-domain links concentrate on the domain's front
                    // pages (index/nav structure), leaving deep pages with
                    // in-degree 0-2 — the full low-degree head of Fig 5.8.
                    let r: f64 = rng.random();
                    let t = start + ((r * r * r) * size as f64) as u64;
                    if t == page {
                        continue;
                    }
                    t
                } else {
                    let t = urn[rng.random_range(0..urn.len())];
                    if t == page {
                        continue;
                    }
                    urn.push(t); // rich get richer
                    t
                };
                edges.push(Edge::new(page, target));
            }
        }
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("web ids are in range")
}

/// Parameters for [`bipartite`].
#[derive(Debug, Clone)]
pub struct BipartiteParams {
    /// Vertices on the source side (e.g. buyers/users). Ids `0..users`.
    pub users: u64,
    /// Vertices on the target side (e.g. items). Ids `users..users+items`.
    /// Real recommendation bipartite graphs are heavily unbalanced —
    /// typically far more users than items.
    pub items: u64,
    /// Mean edges per user (per-user counts are Pareto-distributed).
    pub mean_edges_per_user: f64,
    /// Zipf-like skew of item popularity (0 = uniform; ~0.8 realistic).
    pub popularity_skew: f64,
}

impl Default for BipartiteParams {
    fn default() -> Self {
        BipartiteParams {
            users: 40_000,
            items: 2_000,
            mean_edges_per_user: 12.0,
            popularity_skew: 0.8,
        }
    }
}

/// Generate a bipartite user→item graph (the buyers-and-items class from the
/// paper's introduction, and the target of PowerLyra's bipartite-oriented
/// partitioning extension [Chen et al., APSys'14]). Users have ids
/// `0..users`, items `users..users+items`; all edges point user → item, with
/// Zipf-skewed item popularity.
pub fn bipartite(params: &BipartiteParams, seed: u64) -> EdgeList {
    assert!(
        params.users >= 1 && params.items >= 1,
        "both sides must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.users + params.items;
    // Zipf sampler over items via inverse-CDF on precomputed weights.
    let weights: Vec<f64> = (1..=params.items)
        .map(|r| 1.0 / (r as f64).powf(params.popularity_skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let mut edges: Vec<Edge> = Vec::new();
    for user in 0..params.users {
        let u: f64 = rng.random::<f64>().max(1e-12);
        let count = ((params.mean_edges_per_user / 2.0) / u.powf(0.5)).round() as u64;
        let count = count.clamp(1, params.items);
        for _ in 0..count {
            let x = rng.random::<f64>() * total;
            let idx = match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                Ok(i) | Err(i) => (i as u64).min(params.items - 1),
            };
            edges.push(Edge::new(user, params.users + idx));
        }
    }
    edges.sort_unstable();
    EdgeList::with_vertex_count(edges, n).expect("bipartite ids are in range")
}

/// Generate a uniform Erdős–Rényi `G(n, m)` graph (baseline / tests).
pub fn erdos_renyi(n: u64, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            edges.push(Edge::new(u, v));
        }
    }
    EdgeList::with_vertex_count(edges, n).expect("ER ids are in range")
}

/// Helper: degree-ordered vertex ids, highest total degree first. Useful in
/// tests and in the Fig 5.8 experiment.
pub fn by_degree_desc(graph: &EdgeList) -> Vec<VertexId> {
    let deg = graph.degrees();
    let mut ids: Vec<VertexId> = (0..graph.num_vertices()).map(VertexId).collect();
    ids.sort_by_key(|&v| std::cmp::Reverse(deg.degree(v)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::GraphStats;

    #[test]
    fn road_network_has_bounded_low_degree() {
        let g = road_network(&RoadNetworkParams::default(), 7);
        let stats = GraphStats::compute(&g);
        // Lattice degree <= 4 each direction, plus rare shortcuts.
        assert!(
            stats.max_in_degree <= 10,
            "max in-degree {}",
            stats.max_in_degree
        );
        assert!(stats.mean_degree < 10.0);
        assert!(g.num_edges() > 100_000); // 200x200 grid, ~2 links each, doubled
    }

    #[test]
    fn road_network_is_symmetric_when_bidirectional() {
        let g = road_network(
            &RoadNetworkParams {
                width: 12,
                height: 12,
                ..Default::default()
            },
            3,
        );
        let set: std::collections::HashSet<_> = g.edges().iter().copied().collect();
        for e in g.edges() {
            assert!(set.contains(&e.reversed()), "missing reverse of {e:?}");
        }
    }

    #[test]
    fn road_network_unidirectional_halves_edges() {
        let p = RoadNetworkParams {
            width: 30,
            height: 30,
            bidirectional: false,
            ..Default::default()
        };
        let uni = road_network(&p, 5);
        let bi = road_network(
            &RoadNetworkParams {
                bidirectional: true,
                ..p
            },
            5,
        );
        // Not exactly 2.0: the shortcut budget scales with lattice edge
        // count, which is itself doubled in bidirectional mode.
        assert!((bi.num_edges() as f64 / uni.num_edges() as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn barabasi_albert_has_heavy_tail_without_low_degree_head() {
        let g = barabasi_albert(20_000, 8, 11);
        let deg = g.degrees();
        let max_deg = deg.max_degree();
        assert!(max_deg > 200, "expected a hub, max degree {max_deg}");
        // Depleted low-degree head: essentially no vertices of total degree <= 2.
        let stats = GraphStats::compute(&g);
        assert!(
            stats.low_degree_fraction < 0.01,
            "BA should have almost no low-degree vertices, got {}",
            stats.low_degree_fraction
        );
    }

    #[test]
    fn barabasi_albert_edge_count_close_to_nm() {
        let (n, m) = (5_000u64, 6u32);
        let g = barabasi_albert(n, m, 2);
        let expected = (n - m as u64 - 1) * m as u64;
        let got = g.num_edges() as u64;
        assert!(
            got >= expected - n / 10 && got <= expected + m as u64 + 1,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn rmat_has_full_low_degree_head() {
        let g = rmat(&RmatParams::web_graph(15, 200_000), 13);
        let stats = GraphStats::compute(&g);
        assert!(
            stats.low_degree_fraction > 0.3,
            "R-MAT should have a large low-degree head, got {}",
            stats.low_degree_fraction
        );
        assert!(
            stats.max_in_degree > 500,
            "R-MAT should have hubs, got {}",
            stats.max_in_degree
        );
    }

    #[test]
    fn erdos_renyi_has_exact_edge_count_and_no_self_loops() {
        let g = erdos_renyi(1000, 5000, 17);
        assert_eq!(g.num_edges(), 5000);
        assert_eq!(GraphStats::compute(&g).self_loops, 0);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = barabasi_albert(2000, 4, 9);
        let b = barabasi_albert(2000, 4, 9);
        assert_eq!(a.edges(), b.edges());
        let c = barabasi_albert(2000, 4, 10);
        assert_ne!(a.edges(), c.edges());
        let r1 = rmat(&RmatParams::web_graph(10, 5000), 4);
        let r2 = rmat(&RmatParams::web_graph(10, 5000), 4);
        assert_eq!(r1.edges(), r2.edges());
    }

    #[test]
    fn chung_lu_tracks_weight_profile() {
        // Two-tier profile: 10 heavy vertices, 990 light.
        let mut weights = vec![2.0; 1000];
        for w in weights.iter_mut().take(10) {
            *w = 300.0;
        }
        let g = chung_lu(&weights, 21);
        let deg = g.degrees();
        let heavy_avg: f64 = (0..10).map(|i| deg.degree(VertexId(i)) as f64).sum::<f64>() / 10.0;
        let light_avg: f64 = (10..1000)
            .map(|i| deg.degree(VertexId(i)) as f64)
            .sum::<f64>()
            / 990.0;
        assert!(
            heavy_avg > 20.0 * light_avg,
            "heavy {heavy_avg} vs light {light_avg}"
        );
    }

    #[test]
    fn by_degree_desc_is_sorted() {
        let g = barabasi_albert(3000, 5, 1);
        let deg = g.degrees();
        let order = by_degree_desc(&g);
        for pair in order.windows(2) {
            assert!(deg.degree(pair[0]) >= deg.degree(pair[1]));
        }
    }

    #[test]
    fn edge_stream_is_source_sorted_like_snap_files() {
        for g in [
            barabasi_albert(5_000, 5, 3),
            rmat(&RmatParams::web_graph(12, 20_000), 3),
            road_network(
                &RoadNetworkParams {
                    width: 30,
                    height: 30,
                    ..Default::default()
                },
                3,
            ),
        ] {
            assert!(
                g.edges().windows(2).all(|w| w[0] <= w[1]),
                "edge stream must be (src, dst)-sorted"
            );
        }
    }
}

#[cfg(test)]
mod bipartite_tests {
    use super::*;

    #[test]
    fn bipartite_edges_only_cross_sides() {
        let p = BipartiteParams {
            users: 500,
            items: 50,
            ..Default::default()
        };
        let g = bipartite(&p, 3);
        for e in g.edges() {
            assert!(e.src.0 < 500, "source must be a user");
            assert!((500..550).contains(&e.dst.0), "target must be an item");
        }
        assert_eq!(g.num_vertices(), 550);
    }

    #[test]
    fn popular_items_dominate() {
        let p = BipartiteParams {
            users: 5_000,
            items: 100,
            popularity_skew: 1.0,
            ..Default::default()
        };
        let g = bipartite(&p, 7);
        let deg = g.degrees();
        let top = deg.in_degree(VertexId(5_000));
        let tail = deg.in_degree(VertexId(5_099));
        assert!(top > 10 * tail.max(1), "Zipf head {top} vs tail {tail}");
    }

    #[test]
    fn bipartite_is_deterministic() {
        let p = BipartiteParams::default();
        assert_eq!(bipartite(&p, 1).edges(), bipartite(&p, 1).edges());
    }

    #[test]
    fn every_user_has_at_least_one_edge() {
        let p = BipartiteParams {
            users: 300,
            items: 30,
            ..Default::default()
        };
        let g = bipartite(&p, 9);
        let deg = g.degrees();
        for u in 0..300 {
            assert!(deg.out_degree(VertexId(u)) >= 1, "user {u} has no edges");
        }
    }
}
