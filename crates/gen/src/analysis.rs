//! Degree-distribution analysis: the Fig 5.8 log-log regression and the
//! three-way graph classification that drives every decision tree.
//!
//! §5.4.2 of the paper explains the key discriminator: plot in-degree
//! frequency on log-log axes and fit a power-law regression line. Twitter and
//! LiveJournal have *fewer* low-degree vertices than the line predicts
//! (heavy-tailed), UK-web matches/exceeds it (power-law), and road networks
//! have no tail at all (low-degree). We reproduce that test directly.

use gp_core::EdgeList;

/// The paper's three-way graph taxonomy (Table 4.2 "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Bounded degree, large diameter (road networks).
    LowDegree,
    /// Skewed distribution with a depleted low-degree head (social networks).
    HeavyTailed,
    /// Skewed distribution with the full low-degree head (web graphs).
    PowerLaw,
}

impl std::fmt::Display for GraphClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GraphClass::LowDegree => "low-degree",
            GraphClass::HeavyTailed => "heavy-tailed",
            GraphClass::PowerLaw => "power-law",
        };
        f.write_str(s)
    }
}

/// Result of analyzing a graph's in-degree distribution.
#[derive(Debug, Clone)]
pub struct DegreeAnalysis {
    /// Histogram: `histogram[d] = number of vertices with in-degree d`
    /// (index 0 = degree 0). Truncated at the max in-degree.
    pub histogram: Vec<u64>,
    /// Fitted log-log slope of `count(d) ~ C * d^slope` over the mid-range
    /// (negative for skewed graphs; steepness ~ the power-law exponent).
    pub slope: f64,
    /// Fitted log-log intercept (`ln C`).
    pub intercept: f64,
    /// Ratio of *observed* to *regression-predicted* vertex count at low
    /// degrees (d in 1..=2). `< 1` means the low-degree head is depleted
    /// (heavy-tailed); `>= 1` means the head is full (power-law).
    pub low_degree_residual: f64,
    /// Maximum in-degree observed.
    pub max_in_degree: u32,
    /// Mean total degree.
    pub mean_degree: f64,
}

impl DegreeAnalysis {
    /// Analyze a graph's in-degree distribution.
    pub fn of(graph: &EdgeList) -> Self {
        let degrees = graph.degrees();
        let max_in = degrees.max_in_degree();
        let mut histogram = vec![0u64; max_in as usize + 1];
        for d in degrees.in_degrees() {
            histogram[d as usize] += 1;
        }
        // Fit ln(count) = intercept + slope * ln(d) over degrees with nonzero
        // counts, excluding d = 0 (log-undefined) and the extreme tail where
        // counts are 1 and noisy. Use logarithmic binning weights implicitly
        // by fitting on raw (d, count) points, which matches the simple
        // regression shown in Fig 5.8.
        let points: Vec<(f64, f64)> = histogram
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        let (slope, intercept) = least_squares(&points);
        // Observed vs predicted mass at degree 1..=2.
        let observed: f64 = histogram.iter().skip(1).take(2).map(|&c| c as f64).sum();
        let predicted: f64 = (1..=2u32)
            .map(|d| (intercept + slope * (d as f64).ln()).exp())
            .sum();
        let low_degree_residual = if predicted > 0.0 {
            observed / predicted
        } else {
            0.0
        };
        let n = graph.num_vertices();
        DegreeAnalysis {
            histogram,
            slope,
            intercept,
            low_degree_residual,
            max_in_degree: max_in,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * graph.num_edges() as f64 / n as f64
            },
        }
    }

    /// Log-binned (degree, count) series for plotting — the Fig 5.8 series.
    pub fn log_binned(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        let mut d = 1usize;
        while d < self.histogram.len() {
            let hi = (d * 2).min(self.histogram.len());
            let count: u64 = self.histogram[d..hi].iter().sum();
            if count > 0 {
                out.push((d as u32, count));
            }
            d = hi;
        }
        out
    }
}

/// Classify a graph into the paper's taxonomy.
///
/// Thresholds: a graph whose max in-degree is small (≤ 64) and whose mean
/// degree is modest is **low-degree** — road networks top out at degree 12.
/// Otherwise the split is on the Fig 5.8 residual test: depleted low-degree
/// head ⇒ **heavy-tailed**, full head ⇒ **power-law**.
pub fn classify(graph: &EdgeList) -> GraphClass {
    classify_analysis(&DegreeAnalysis::of(graph))
}

/// Classification from a precomputed analysis (cheaper when the analysis is
/// also being reported).
pub fn classify_analysis(a: &DegreeAnalysis) -> GraphClass {
    if a.max_in_degree <= 64 && a.mean_degree <= 16.0 {
        GraphClass::LowDegree
    } else if a.low_degree_residual < 0.5 {
        GraphClass::HeavyTailed
    } else {
        GraphClass::PowerLaw
    }
}

fn least_squares(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (0.0, points.first().map(|p| p.1).unwrap_or(0.0));
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::*;

    #[test]
    fn road_network_classifies_low_degree() {
        let g = road_network(
            &RoadNetworkParams {
                width: 60,
                height: 60,
                ..Default::default()
            },
            1,
        );
        assert_eq!(classify(&g), GraphClass::LowDegree);
    }

    #[test]
    fn barabasi_albert_classifies_heavy_tailed() {
        let g = barabasi_albert(30_000, 10, 2);
        let a = DegreeAnalysis::of(&g);
        assert_eq!(
            classify_analysis(&a),
            GraphClass::HeavyTailed,
            "residual {}",
            a.low_degree_residual
        );
    }

    #[test]
    fn rmat_classifies_power_law() {
        let g = rmat(&RmatParams::web_graph(15, 400_000), 3);
        let a = DegreeAnalysis::of(&g);
        assert_eq!(
            classify_analysis(&a),
            GraphClass::PowerLaw,
            "residual {}",
            a.low_degree_residual
        );
    }

    #[test]
    fn skewed_graphs_have_negative_slope() {
        let g = rmat(&RmatParams::web_graph(14, 150_000), 5);
        let a = DegreeAnalysis::of(&g);
        assert!(a.slope < -0.5, "slope {}", a.slope);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = barabasi_albert(5_000, 4, 7);
        let a = DegreeAnalysis::of(&g);
        let total: u64 = a.histogram.iter().sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn log_binned_preserves_total_nonzero_degree_mass() {
        let g = rmat(&RmatParams::web_graph(12, 40_000), 9);
        let a = DegreeAnalysis::of(&g);
        let binned_total: u64 = a.log_binned().iter().map(|&(_, c)| c).sum();
        let direct_total: u64 = a.histogram.iter().skip(1).sum();
        assert_eq!(binned_total, direct_total);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 - 2.0 * i as f64)).collect();
        let (slope, intercept) = least_squares(&pts);
        assert!((slope + 2.0).abs() < 1e-9);
        assert!((intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_fits_do_not_panic() {
        let (s, i) = least_squares(&[]);
        assert_eq!((s, i), (0.0, 0.0));
        let (s, _) = least_squares(&[(1.0, 2.0)]);
        assert_eq!(s, 0.0);
        // Empty graph analysis.
        let a = DegreeAnalysis::of(&gp_core::EdgeList::default());
        assert_eq!(a.max_in_degree, 0);
    }

    #[test]
    fn display_names_match_paper_vocabulary() {
        assert_eq!(GraphClass::LowDegree.to_string(), "low-degree");
        assert_eq!(GraphClass::HeavyTailed.to_string(), "heavy-tailed");
        assert_eq!(GraphClass::PowerLaw.to_string(), "power-law");
    }
}
