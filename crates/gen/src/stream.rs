//! Streaming power-law generation: adjacency lists one vertex at a time.
//!
//! The in-memory generators in [`crate::generators`] materialize a full
//! `EdgeList`, which caps graph size at available RAM (16 bytes/edge). For
//! the out-of-core experiments we need graphs *larger* than what we want to
//! hold in memory, produced directly in the canonical `(src, dst)`-sorted
//! order the `gp-store` builder consumes. [`PowerLawStream`] does that with
//! O(max degree) working memory:
//!
//! * **Out-degrees** follow a Zipf-like rank law. With
//!   `F(x) = (x^(1-α) - 1) / (n^(1-α) - 1)` (the normalized CDF of
//!   `x^(-α)`), vertex `v` gets `d_v = floor(E·F(v+1)) - floor(E·F(v))`
//!   edges — the telescoping floors make the degrees sum to exactly `E`
//!   with no rounding drift, and `d_v ∝ v^(-α)` gives a degree
//!   distribution with power-law exponent `1 + 1/α`.
//! * **In-degrees** are skewed by sampling `dst = floor(n · u^β)` for
//!   uniform `u`: larger `β` concentrates targets on low ids, creating
//!   in-degree hubs like the head of a web crawl.
//!
//! Determinism: the per-vertex RNG is re-seeded from `(seed, v)`, so record
//! `v` is reproducible regardless of how much of the stream was consumed.

use gp_core::{Splitmix64, VertexId};

/// Parameters for [`PowerLawStream`].
#[derive(Debug, Clone, Copy)]
pub struct PowerLawStreamParams {
    /// Vertex-space size `n`. Must be ≥ 2 when `num_edges > 0`.
    pub num_vertices: u64,
    /// Exact total edge count `E`.
    pub num_edges: u64,
    /// Out-degree rank exponent `α ∈ (0, 1)`; the resulting degree
    /// distribution has exponent `1 + 1/α` (0.6 ⇒ ≈ 2.7, the web-graph
    /// regime).
    pub alpha: f64,
    /// In-target skew `β ≥ 1`; 1.0 = uniform targets, larger values pile
    /// in-edges onto low-id hubs.
    pub beta: f64,
}

impl Default for PowerLawStreamParams {
    fn default() -> Self {
        PowerLawStreamParams {
            num_vertices: 1 << 20,
            num_edges: 16 << 20,
            alpha: 0.6,
            beta: 2.0,
        }
    }
}

/// Vertex-at-a-time power-law graph stream in canonical store order.
pub struct PowerLawStream {
    params: PowerLawStreamParams,
    seed: u64,
    next_vertex: u64,
    /// `floor(E · F(next_vertex))` — carried so each step is one CDF eval.
    cum: u64,
    edges_emitted: u64,
}

impl PowerLawStream {
    /// New stream; panics on out-of-range parameters.
    pub fn new(params: PowerLawStreamParams, seed: u64) -> Self {
        assert!(
            params.alpha > 0.0 && params.alpha < 1.0,
            "alpha must be in (0, 1), got {}",
            params.alpha
        );
        assert!(params.beta >= 1.0, "beta must be >= 1, got {}", params.beta);
        assert!(
            params.num_edges == 0 || params.num_vertices >= 2,
            "need at least 2 vertices to avoid self-loops"
        );
        PowerLawStream {
            params,
            seed,
            next_vertex: 0,
            cum: 0,
            edges_emitted: 0,
        }
    }

    /// Declared vertex count.
    pub fn num_vertices(&self) -> u64 {
        self.params.num_vertices
    }

    /// Declared (exact) edge count.
    pub fn num_edges(&self) -> u64 {
        self.params.num_edges
    }

    /// Edges emitted so far (equals `num_edges` once the stream is drained).
    pub fn edges_emitted(&self) -> u64 {
        self.edges_emitted
    }

    /// `floor(E · F(x))` for the normalized rank CDF `F`.
    fn cum_degree(&self, x: u64) -> u64 {
        let n = self.params.num_vertices as f64;
        let e = self.params.num_edges as f64;
        let one_minus_a = 1.0 - self.params.alpha;
        let f = ((x as f64).powf(one_minus_a) - 1.0) / (n.powf(one_minus_a) - 1.0);
        // Clamp against floating-point overshoot; F(n) must be exactly 1.
        (e * f.clamp(0.0, 1.0)).floor() as u64
    }

    /// Produce the next vertex's sorted adjacency into `targets`. Returns
    /// the vertex id, or `None` once all `num_vertices` records are out.
    pub fn next_vertex(&mut self, targets: &mut Vec<VertexId>) -> Option<VertexId> {
        if self.next_vertex >= self.params.num_vertices {
            return None;
        }
        let v = self.next_vertex;
        self.next_vertex += 1;
        let cum_next = if self.next_vertex == self.params.num_vertices {
            self.params.num_edges // force exact total regardless of fp error
        } else {
            self.cum_degree(self.next_vertex)
        };
        let degree = cum_next - self.cum;
        self.cum = cum_next;
        self.edges_emitted += degree;

        targets.clear();
        let n = self.params.num_vertices;
        let mut rng = Splitmix64::new(self.seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..degree {
            let u = rng.next_f64();
            let mut dst = ((n as f64) * u.powf(self.params.beta)) as u64;
            dst = dst.min(n - 1);
            if dst == v {
                dst = (dst + 1) % n; // no self-loops
            }
            targets.push(VertexId(dst));
        }
        targets.sort_unstable();
        Some(VertexId(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(params: PowerLawStreamParams, seed: u64) -> Vec<(u64, Vec<VertexId>)> {
        let mut s = PowerLawStream::new(params, seed);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(v) = s.next_vertex(&mut buf) {
            out.push((v.0, buf.clone()));
        }
        out
    }

    #[test]
    fn edge_total_is_exact() {
        for edges in [0u64, 1, 999, 10_000, 123_457] {
            let params = PowerLawStreamParams {
                num_vertices: 2_000,
                num_edges: edges,
                ..Default::default()
            };
            let mut s = PowerLawStream::new(params, 7);
            let mut buf = Vec::new();
            let mut total = 0u64;
            while s.next_vertex(&mut buf).is_some() {
                total += buf.len() as u64;
            }
            assert_eq!(total, edges);
            assert_eq!(s.edges_emitted(), edges);
        }
    }

    #[test]
    fn degrees_decay_with_rank() {
        let recs = drain(
            PowerLawStreamParams {
                num_vertices: 10_000,
                num_edges: 100_000,
                ..Default::default()
            },
            3,
        );
        let head: u64 = recs[..100].iter().map(|(_, t)| t.len() as u64).sum();
        let tail: u64 = recs[9_900..].iter().map(|(_, t)| t.len() as u64).sum();
        assert!(
            head > 10 * tail.max(1),
            "first 100 ranks ({head}) should dwarf last 100 ({tail})"
        );
    }

    #[test]
    fn targets_are_sorted_in_range_and_loop_free() {
        let recs = drain(
            PowerLawStreamParams {
                num_vertices: 500,
                num_edges: 5_000,
                beta: 2.5,
                ..Default::default()
            },
            11,
        );
        for (v, targets) in &recs {
            for w in targets.windows(2) {
                assert!(w[0] <= w[1], "v{v} targets unsorted");
            }
            for t in targets {
                assert!(t.0 < 500);
                assert_ne!(t.0, *v, "self-loop at v{v}");
            }
        }
    }

    #[test]
    fn beta_skews_targets_toward_low_ids() {
        let uniform = drain(
            PowerLawStreamParams {
                num_vertices: 4_000,
                num_edges: 40_000,
                beta: 1.0,
                ..Default::default()
            },
            5,
        );
        let skewed = drain(
            PowerLawStreamParams {
                num_vertices: 4_000,
                num_edges: 40_000,
                beta: 3.0,
                ..Default::default()
            },
            5,
        );
        let low_mass = |recs: &[(u64, Vec<VertexId>)]| {
            recs.iter()
                .flat_map(|(_, t)| t.iter())
                .filter(|t| t.0 < 400)
                .count()
        };
        assert!(low_mass(&skewed) > 3 * low_mass(&uniform));
    }

    #[test]
    fn stream_is_deterministic() {
        let params = PowerLawStreamParams {
            num_vertices: 1_000,
            num_edges: 8_000,
            ..Default::default()
        };
        assert_eq!(drain(params, 42), drain(params, 42));
        assert_ne!(drain(params, 42), drain(params, 43));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_out_of_range_rejected() {
        PowerLawStream::new(
            PowerLawStreamParams {
                alpha: 1.0,
                ..Default::default()
            },
            0,
        );
    }
}
