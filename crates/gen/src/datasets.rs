//! Dataset registry mirroring Table 4.2 at laptop scale.
//!
//! Each [`Dataset`] variant corresponds to a row of Table 4.2. `generate`
//! produces a synthetic analogue whose *degree-class signature* matches the
//! real graph (verified by `gp_gen::classify`); `paper_*` accessors return
//! the real dataset's size for the Table 4.2 reproduction. The default scale
//! (1.0) keeps the largest analogue around 1.5M edges so the full experiment
//! suite runs in minutes; relative sizes roughly track the real datasets.

use crate::analysis::GraphClass;
use crate::generators::{
    barabasi_albert_reciprocal, road_network, web_graph, RoadNetworkParams, WebGraphParams,
};
use gp_core::EdgeList;

/// The six datasets of Table 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// California road network (SNAP). 5.5M edges, 1.9M vertices, low-degree.
    RoadNetCa,
    /// Full USA road network (DIMACS 9). 57.5M edges, 23.6M vertices, low-degree.
    RoadNetUsa,
    /// LiveJournal social network (SNAP). 68.5M edges, 4.8M vertices, heavy-tailed.
    LiveJournal,
    /// English Wikipedia link graph, 2013 (LAW). 101M edges, 4.2M vertices, heavy-tailed.
    Enwiki2013,
    /// Twitter follower graph (Kwak et al.). 1.46B edges, 41.6M vertices, heavy-tailed.
    Twitter,
    /// UK web crawl (LAW). 3.71B edges, 105.1M vertices, power-law.
    UkWeb,
}

/// Static description of a dataset: the Table 4.2 row plus generation recipe.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Real dataset's edge count (Table 4.2).
    pub paper_edges: u64,
    /// Real dataset's vertex count (Table 4.2).
    pub paper_vertices: u64,
    /// Degree class (Table 4.2 "Type").
    pub class: GraphClass,
    /// Source listed in the paper.
    pub source: &'static str,
}

impl Dataset {
    /// All six datasets in Table 4.2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::RoadNetCa,
        Dataset::RoadNetUsa,
        Dataset::LiveJournal,
        Dataset::Enwiki2013,
        Dataset::Twitter,
        Dataset::UkWeb,
    ];

    /// The five datasets used in the PowerGraph/PowerLyra chapters (§5.3:
    /// road-net-CA, road-net-USA, LiveJournal, Twitter, UK-web).
    pub const POWERGRAPH_SET: [Dataset; 5] = [
        Dataset::RoadNetCa,
        Dataset::RoadNetUsa,
        Dataset::LiveJournal,
        Dataset::Twitter,
        Dataset::UkWeb,
    ];

    /// The four datasets used for GraphX (§7.3: Twitter and UK-web OOM'd, so
    /// Enwiki-2013 replaces them).
    pub const GRAPHX_SET: [Dataset; 4] = [
        Dataset::RoadNetCa,
        Dataset::RoadNetUsa,
        Dataset::LiveJournal,
        Dataset::Enwiki2013,
    ];

    /// Table 4.2 row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::RoadNetCa => DatasetSpec {
                name: "road-net-CA",
                paper_edges: 5_500_000,
                paper_vertices: 1_900_000,
                class: GraphClass::LowDegree,
                source: "SNAP",
            },
            Dataset::RoadNetUsa => DatasetSpec {
                name: "road-net-USA",
                paper_edges: 57_500_000,
                paper_vertices: 23_600_000,
                class: GraphClass::LowDegree,
                source: "DIMACS 9",
            },
            Dataset::LiveJournal => DatasetSpec {
                name: "LiveJournal",
                paper_edges: 68_500_000,
                paper_vertices: 4_800_000,
                class: GraphClass::HeavyTailed,
                source: "SNAP",
            },
            Dataset::Enwiki2013 => DatasetSpec {
                name: "Enwiki-2013",
                paper_edges: 101_000_000,
                paper_vertices: 4_200_000,
                class: GraphClass::HeavyTailed,
                source: "LAW",
            },
            Dataset::Twitter => DatasetSpec {
                name: "Twitter",
                paper_edges: 1_460_000_000,
                paper_vertices: 41_600_000,
                class: GraphClass::HeavyTailed,
                source: "Kwak et al. (WWW'10)",
            },
            Dataset::UkWeb => DatasetSpec {
                name: "UK-web",
                paper_edges: 3_710_000_000,
                paper_vertices: 105_100_000,
                class: GraphClass::PowerLaw,
                source: "LAW",
            },
        }
    }

    /// Approximate analogue edge count at `scale = 1.0`. The anchor for
    /// [`scale_for_edges`]: asking for this many edges yields scale 1.
    ///
    /// [`scale_for_edges`]: Dataset::scale_for_edges
    pub fn analogue_base_edges(self) -> u64 {
        match self {
            Dataset::RoadNetCa => 170_000,
            Dataset::RoadNetUsa => 560_000,
            Dataset::LiveJournal => 750_000,
            Dataset::Enwiki2013 => 1_000_000,
            Dataset::Twitter => 1_500_000,
            Dataset::UkWeb => 1_200_000,
        }
    }

    /// The `scale` value that makes `generate` produce roughly
    /// `target_edges` edges (sizes are approximate: generators round lattice
    /// sides and attachment counts).
    pub fn scale_for_edges(self, target_edges: u64) -> f64 {
        assert!(target_edges > 0, "target edge count must be positive");
        target_edges as f64 / self.analogue_base_edges() as f64
    }

    /// Generate an analogue sized by edge count instead of abstract scale —
    /// the `--edges` CLI knob. Equivalent to
    /// `generate(scale_for_edges(target_edges), seed)`.
    pub fn generate_with_edges(self, target_edges: u64, seed: u64) -> EdgeList {
        self.generate(self.scale_for_edges(target_edges), seed)
    }

    /// Generate the synthetic analogue at `scale` (1.0 = default mini sizes;
    /// 0.1 = smoke-test sizes). Deterministic per (dataset, scale, seed).
    ///
    /// ```
    /// use gp_gen::{classify, Dataset, GraphClass};
    /// let g = Dataset::RoadNetCa.generate(0.1, 42);
    /// assert_eq!(classify(&g), GraphClass::LowDegree);
    /// ```
    pub fn generate(self, scale: f64, seed: u64) -> EdgeList {
        assert!(scale > 0.0, "scale must be positive");
        let s = |base: u64| ((base as f64 * scale).max(4.0)) as u64;
        let side = |base: u32| ((base as f64 * scale.sqrt()).max(4.0)) as u32;
        match self {
            // ~46k vertices, ~170k directed edges at scale 1.
            Dataset::RoadNetCa => road_network(
                &RoadNetworkParams {
                    width: side(215),
                    height: side(215),
                    link_probability: 0.94,
                    shortcut_fraction: 0.01,
                    bidirectional: true,
                },
                seed ^ 0x0ca0,
            ),
            // ~150k vertices, ~560k directed edges at scale 1.
            Dataset::RoadNetUsa => road_network(
                &RoadNetworkParams {
                    width: side(390),
                    height: side(390),
                    link_probability: 0.96,
                    shortcut_fraction: 0.005,
                    bidirectional: true,
                },
                seed ^ 0x05a0,
            ),
            // ~55k vertices, ~750k edges; friendships are mostly mutual.
            Dataset::LiveJournal => barabasi_albert_reciprocal(s(55_000), 8, 0.70, seed ^ 0x11fe),
            // ~42k vertices, ~1.0M edges; wiki links are rarely reciprocal.
            Dataset::Enwiki2013 => barabasi_albert_reciprocal(s(42_000), 23, 0.06, seed ^ 0xe419),
            // ~80k vertices, ~1.5M edges; ~22% of follows are mutual
            // (Kwak et al., WWW'10).
            Dataset::Twitter => barabasi_albert_reciprocal(s(80_000), 15, 0.22, seed ^ 0x7717),
            // ~120k vertices, ~1.2M edges; full power-law head plus the
            // host-locality real crawls have (see `web_graph`).
            Dataset::UkWeb => web_graph(
                &WebGraphParams {
                    domains: s(3_000),
                    ..Default::default()
                },
                seed ^ 0x0b0b,
            ),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify;

    #[test]
    fn all_registry_names_are_unique() {
        let names: std::collections::HashSet<_> =
            Dataset::ALL.iter().map(|d| d.spec().name).collect();
        assert_eq!(names.len(), Dataset::ALL.len());
    }

    #[test]
    fn analogues_match_declared_degree_class() {
        for d in [Dataset::RoadNetCa, Dataset::LiveJournal, Dataset::UkWeb] {
            let g = d.generate(0.5, 42);
            assert_eq!(classify(&g), d.spec().class, "dataset {d}");
        }
    }

    #[test]
    fn relative_sizes_track_the_paper() {
        let ca = Dataset::RoadNetCa.generate(0.25, 1).num_edges();
        let usa = Dataset::RoadNetUsa.generate(0.25, 1).num_edges();
        let lj = Dataset::LiveJournal.generate(0.25, 1).num_edges();
        let uk = Dataset::UkWeb.generate(0.25, 1).num_edges();
        assert!(ca < usa, "road-CA < road-USA");
        assert!(ca < lj, "road-CA < LiveJournal");
        assert!(lj < uk, "LiveJournal < UK-web");
    }

    #[test]
    fn scale_controls_size_monotonically() {
        let small = Dataset::LiveJournal.generate(0.1, 3).num_edges();
        let large = Dataset::LiveJournal.generate(0.5, 3).num_edges();
        assert!(
            large > 3 * small,
            "scale 0.5 ({large}) should dwarf scale 0.1 ({small})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Twitter.generate(0.1, 9);
        let b = Dataset::Twitter.generate(0.1, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn edge_targeting_lands_near_the_request() {
        for d in [Dataset::LiveJournal, Dataset::RoadNetCa, Dataset::UkWeb] {
            for target in [50_000u64, 300_000] {
                let got = d.generate_with_edges(target, 2).num_edges() as f64;
                let ratio = got / target as f64;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{d}: asked {target}, got {got} (ratio {ratio:.2})"
                );
            }
        }
    }

    #[test]
    fn table_4_2_rows_are_complete() {
        for d in Dataset::ALL {
            let s = d.spec();
            assert!(s.paper_edges > 0 && s.paper_vertices > 0);
            assert!(!s.name.is_empty() && !s.source.is_empty());
        }
    }
}
