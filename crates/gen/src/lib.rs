//! # gp-gen — synthetic graph generators and degree analysis
//!
//! The paper evaluates on six real-world graphs (Table 4.2) spanning three
//! degree classes that its analysis (§5.4.2, Fig 5.8) shows are the *only*
//! graph property the partitioning results depend on:
//!
//! * **Low-degree** — road networks (road-net-CA, road-net-USA): bounded
//!   degree (max 12 in the real data), huge diameter.
//! * **Heavy-tailed** — social networks (LiveJournal, Twitter, Enwiki-2013):
//!   skewed degree distribution but with *fewer low-degree vertices than a
//!   true power law predicts* (they sit below the log-log regression line).
//! * **Power-law** — web graphs (UK-web): skewed *and* with the full
//!   low-degree head (many degree-1/2 vertices).
//!
//! We cannot ship multi-billion-edge crawls, so this crate generates scaled
//! synthetic analogues with the same signatures: lattice-with-shortcut road
//! networks, Barabási–Albert graphs (minimum attachment degree ⇒ depleted
//! low-degree head ⇒ heavy-tailed), and R-MAT graphs (full power-law head).
//! [`analysis`] implements the Fig 5.8 log-log regression and the
//! low-degree-mass classifier that separates the three classes, and
//! [`datasets`] is a registry mirroring Table 4.2 at a user-chosen scale.

pub mod analysis;
pub mod datasets;
pub mod generators;
pub mod store_build;
pub mod stream;

pub use analysis::{classify, DegreeAnalysis, GraphClass};
pub use datasets::{Dataset, DatasetSpec};
pub use generators::{
    barabasi_albert, barabasi_albert_reciprocal, bipartite, chung_lu, erdos_renyi, rmat,
    road_network, web_graph, BipartiteParams, RmatParams, RoadNetworkParams, WebGraphParams,
};
pub use store_build::{build_dataset_store, build_powerlaw_store};
pub use stream::{PowerLawStream, PowerLawStreamParams};
