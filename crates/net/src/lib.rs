//! # gp-net — unreliable networks and the protocols that survive them
//!
//! The engines in `gp-engine` assume every superstep's exchange completes
//! cleanly; real clusters drop, duplicate and delay messages. This crate
//! prices what a production messaging layer does about that, in the same
//! deterministic-accounting style as the rest of the repo:
//!
//! * [`retry::RetryPolicy`] — a reliable-delivery protocol over flaky
//!   links (`FaultKind::Flaky` windows in a `FaultPlan`). Each superstep's
//!   exchange forms one **ack window**: the receiver acks what arrived at
//!   the barrier, and unacked messages are retransmitted after a
//!   deterministic timeout with capped exponential backoff. Costs are
//!   closed-form expectations over the per-message loss probability, so
//!   the same plan always prices to the same bytes — no per-message
//!   simulation, no new randomness.
//! * [`speculate::SpeculationPolicy`] — backup tasks for stragglers: when
//!   one machine's projected superstep time exceeds a multiple of the
//!   median, its partition's work is re-executed on the least-loaded peer
//!   and the first finisher wins. The clone's compute and input shipping
//!   are charged to the cluster; the saving is capped by the straggler's
//!   fault penalty so a healthy run can never be undercut.
//!
//! [`CommsConfig`] bundles both and defaults to fully disabled, preserving
//! the repo-wide contract that inactive models leave reports bit-identical.

pub mod retry;
pub mod speculate;

pub use retry::{contention_loss_rate, RetryPolicy};
pub use speculate::{plan_speculation, SpeculationOutcome, SpeculationPolicy};

/// Communication-layer settings threaded through `EngineConfig`.
///
/// Both halves default to disabled: an engine built without touching comms
/// behaves exactly as it did before this crate existed, even when the fault
/// plan schedules flaky windows (they model an idealized network that
/// delivers everything — the pre-protocol baseline).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommsConfig {
    /// Reliable-delivery protocol for flaky links.
    pub retry: RetryPolicy,
    /// Speculative re-execution of straggling machines' work.
    pub speculation: SpeculationPolicy,
}

impl CommsConfig {
    /// Everything off (the default).
    pub fn disabled() -> Self {
        CommsConfig::default()
    }

    /// Reliable delivery on, speculation off.
    pub fn reliable() -> Self {
        CommsConfig {
            retry: RetryPolicy::reliable(),
            speculation: SpeculationPolicy::default(),
        }
    }

    /// Builder: toggle speculative straggler re-execution.
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation.enabled = on;
        self
    }

    /// Builder: replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True when neither protocol can alter a report.
    pub fn is_disabled(&self) -> bool {
        !self.retry.enabled && !self.speculation.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled() {
        let c = CommsConfig::default();
        assert!(c.is_disabled());
        assert!(!c.retry.enabled);
        assert!(!c.speculation.enabled);
        assert_eq!(c, CommsConfig::disabled());
    }

    #[test]
    fn builders_toggle_halves_independently() {
        let c = CommsConfig::reliable();
        assert!(c.retry.enabled && !c.speculation.enabled);
        let c = CommsConfig::disabled().with_speculation(true);
        assert!(!c.retry.enabled && c.speculation.enabled);
        assert!(!c.is_disabled());
        let c = CommsConfig::disabled().with_retry(RetryPolicy::reliable());
        assert!(!c.is_disabled());
    }
}
