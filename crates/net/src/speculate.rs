//! Speculative re-execution of straggling machines (backup tasks).
//!
//! MapReduce-style straggler mitigation adapted to superstep barriers: the
//! runtime watches per-machine projected completion times for the step;
//! when the slowest machine's projection exceeds a configurable multiple
//! of the median, it re-executes that machine's partition work on the
//! least-loaded peer and the barrier takes whichever copy finishes first.
//! The clone is not free — its compute work and the re-shipping of its
//! inputs are charged to the backup machine — and the model never lets a
//! speculation "win" more than the straggler's fault penalty, so a healthy
//! run cannot be undercut by turning speculation on.

/// When and whether to launch backup tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPolicy {
    /// Whether backup tasks launch at all.
    pub enabled: bool,
    /// A machine is declared a straggler when its projected step time
    /// exceeds `threshold ×` the median machine's (must be > 1).
    pub threshold: f64,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            enabled: false,
            threshold: 1.5,
        }
    }
}

impl SpeculationPolicy {
    /// The default policy, switched on.
    pub fn speculative() -> Self {
        SpeculationPolicy {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One launched backup task and its accounting consequences.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationOutcome {
    /// The straggling machine whose work was cloned.
    pub slow_machine: usize,
    /// The least-loaded peer that ran the clone.
    pub backup_machine: usize,
    /// Work units re-executed on the backup machine.
    pub clone_work: f64,
    /// Input bytes re-shipped to the backup machine.
    pub shipped_bytes: f64,
    /// How long the clone ran (at healthy rates), seconds.
    pub clone_seconds: f64,
    /// Barrier time recovered by taking the first finisher, seconds.
    /// Always `>= 0` and `<=` the straggler's fault penalty.
    pub saved_seconds: f64,
}

/// Decide whether a backup task launches for this step and price it.
///
/// `projected_s[m]` is machine `m`'s projected completion time for the
/// step *including* active fault penalties; `penalty_s[m]` is the penalty
/// component alone (zero on a healthy machine). `work`/`in_bytes` are the
/// step's per-machine loads, re-priced at healthy rates for the clone.
///
/// The timeline: the straggler is detected when the median machine
/// finishes, the clone starts then on the least-loaded peer (assumed to
/// have idle threads — its own finish time is unchanged), and the barrier
/// releases at `max(other machines, min(straggler, clone))`. Returns
/// `None` when nothing exceeds the threshold, the slowest machine carries
/// no fault penalty (never second-guess honest load imbalance — that
/// keeps clean runs bit-identical), or the clone wouldn't actually save
/// time.
pub fn plan_speculation(
    policy: &SpeculationPolicy,
    projected_s: &[f64],
    penalty_s: &[f64],
    work: &[f64],
    in_bytes: &[f64],
    compute_rate: f64,
    bandwidth: f64,
) -> Option<SpeculationOutcome> {
    let n = projected_s.len();
    if !policy.enabled || n < 2 {
        return None;
    }
    let slow = argmax(projected_s)?;
    let penalty = penalty_s.get(slow).copied().unwrap_or(0.0);
    if penalty <= 1e-12 {
        return None;
    }
    let mut sorted = projected_s.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite projections"));
    let median = sorted[(n - 1) / 2];
    if projected_s[slow] <= policy.threshold * median {
        return None;
    }
    let backup = argmin_excluding(projected_s, slow)?;
    let clone_work = work.get(slow).copied().unwrap_or(0.0);
    let shipped_bytes = in_bytes.get(slow).copied().unwrap_or(0.0);
    let clone_seconds = clone_work / compute_rate + shipped_bytes / bandwidth;
    let clone_finish = median + clone_seconds;
    let partition_ready = projected_s[slow].min(clone_finish);
    let others = projected_s
        .iter()
        .enumerate()
        .filter(|&(m, _)| m != slow)
        .map(|(_, &t)| t)
        .fold(0.0, f64::max);
    let new_finish = partition_ready.max(others);
    let saved_seconds = (projected_s[slow] - new_finish).clamp(0.0, penalty);
    if saved_seconds <= 1e-12 {
        return None;
    }
    Some(SpeculationOutcome {
        slow_machine: slow,
        backup_machine: backup,
        clone_work,
        shipped_bytes,
        clone_seconds,
        saved_seconds,
    })
}

fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|(ai, a), (bi, b)| a.partial_cmp(b).unwrap().then(bi.cmp(ai)))
        .map(|(i, _)| i)
}

fn argmin_excluding(xs: &[f64], skip: usize) -> Option<usize> {
    xs.iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .min_by(|(ai, a), (bi, b)| a.partial_cmp(b).unwrap().then(ai.cmp(bi)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 1e6;
    const BW: f64 = 1e9;

    fn on() -> SpeculationPolicy {
        SpeculationPolicy::speculative()
    }

    #[test]
    fn straggler_with_penalty_triggers_backup_on_least_loaded_peer() {
        // Machine 2 projects 10s where the median is 1s, all of it penalty.
        let projected = [1.0, 0.5, 10.0, 1.0];
        let penalty = [0.0, 0.0, 9.0, 0.0];
        let work = [1e6, 5e5, 1e6, 1e6];
        let bytes = [0.0, 0.0, 1e6, 0.0];
        let o = plan_speculation(&on(), &projected, &penalty, &work, &bytes, RATE, BW)
            .expect("should trigger");
        assert_eq!(o.slow_machine, 2);
        assert_eq!(o.backup_machine, 1, "least-loaded peer");
        assert_eq!(o.clone_work, 1e6);
        assert_eq!(o.shipped_bytes, 1e6);
        // Clone: detected at median 1.0, runs 1.0s compute + 0.001s ship →
        // partition ready at ~2.001, others done by 1.0 → saved ≈ 8.
        assert!((o.clone_seconds - 1.001).abs() < 1e-9);
        assert!((o.saved_seconds - (10.0 - 2.001)).abs() < 1e-9);
        assert!(o.saved_seconds <= penalty[2]);
    }

    #[test]
    fn honest_load_imbalance_is_left_alone() {
        // Same skewed projections but no fault penalty behind them.
        let projected = [1.0, 0.5, 10.0, 1.0];
        let penalty = [0.0; 4];
        let work = [1e6; 4];
        let bytes = [0.0; 4];
        assert_eq!(
            plan_speculation(&on(), &projected, &penalty, &work, &bytes, RATE, BW),
            None
        );
    }

    #[test]
    fn below_threshold_does_not_trigger() {
        let projected = [1.0, 1.1, 1.4, 1.0];
        let penalty = [0.0, 0.0, 0.4, 0.0];
        let work = [1e6; 4];
        let bytes = [0.0; 4];
        assert_eq!(
            plan_speculation(&on(), &projected, &penalty, &work, &bytes, RATE, BW),
            None,
            "1.4 <= 1.5 x median 1.0"
        );
    }

    #[test]
    fn saving_never_exceeds_the_fault_penalty() {
        // Penalty is only 2s of the 10s projection; the clone could win
        // more, but the clamp keeps healthy wall time sacrosanct.
        let projected = [1.0, 1.0, 10.0];
        let penalty = [0.0, 0.0, 2.0];
        let work = [1e5, 1e5, 1e5];
        let bytes = [0.0; 3];
        let o = plan_speculation(&on(), &projected, &penalty, &work, &bytes, RATE, BW)
            .expect("should trigger");
        assert_eq!(o.saved_seconds, 2.0);
    }

    #[test]
    fn disabled_or_degenerate_clusters_never_speculate() {
        let projected = [1.0, 10.0];
        let penalty = [0.0, 9.0];
        let work = [1e5, 1e5];
        let bytes = [0.0, 0.0];
        assert_eq!(
            plan_speculation(
                &SpeculationPolicy::default(),
                &projected,
                &penalty,
                &work,
                &bytes,
                RATE,
                BW
            ),
            None
        );
        assert_eq!(
            plan_speculation(&on(), &[5.0], &[4.0], &[1e5], &[0.0], RATE, BW),
            None,
            "single machine has no peer"
        );
    }

    #[test]
    fn slow_clone_that_cannot_help_is_not_launched() {
        // The clone would finish after the straggler itself.
        let projected = [1.0, 1.0, 2.0];
        let penalty = [0.0, 0.0, 1.0];
        let work = [5e6, 5e6, 5e6]; // clone alone takes 5s
        let bytes = [0.0; 3];
        assert_eq!(
            plan_speculation(&on(), &projected, &penalty, &work, &bytes, RATE, BW),
            None
        );
    }
}
