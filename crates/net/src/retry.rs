//! Reliable delivery over lossy links: ack windows, timeouts, backoff.
//!
//! The protocol being modeled is the standard one: each superstep's
//! exchange is one ack window; a sender keeps every message buffered until
//! the receiver acks it, and retransmits on a timeout that doubles (capped)
//! with each attempt. Rather than simulating individual messages we charge
//! the *expectation* of that process, which keeps the model deterministic
//! and exactly zero-cost on a clean link:
//!
//! * a message is retransmitted at attempt `k` with probability `p^k`
//!   (every earlier copy was lost), so the expected number of extra
//!   transmissions per message is `Σ_{k=1..A-1} p^k` — `0` when `p = 0`,
//!   strictly increasing in `p`;
//! * each retransmission wave is preceded by its timeout, so the expected
//!   stall charged to the barrier is `Σ_{k=1..A-1} p^k · timeout(k-1)`
//!   with `timeout(i) = min(base · backoff^i, max)`.
//!
//! After `max_attempts` the protocol gives up and the superstep's barrier
//! recovers the message with the next global resynchronization — the
//! residual loss `p^A` is exposed for reporting but not priced further.

/// Deterministic retransmission policy for one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Whether the protocol runs at all. Disabled means flaky windows are
    /// inert (the idealized-network baseline).
    pub enabled: bool,
    /// Total transmission attempts per message (first send included).
    pub max_attempts: u32,
    /// Timeout before the first retransmission, seconds.
    pub base_timeout_s: f64,
    /// Multiplier applied to the timeout after each failed attempt.
    pub backoff: f64,
    /// Cap on any single timeout, seconds.
    pub max_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: false,
            max_attempts: 5,
            base_timeout_s: 0.05,
            backoff: 2.0,
            max_timeout_s: 1.0,
        }
    }
}

impl RetryPolicy {
    /// The default protocol, switched on.
    pub fn reliable() -> Self {
        RetryPolicy {
            enabled: true,
            ..Self::default()
        }
    }

    /// Timeout preceding retransmission attempt `retry` (0-based), seconds:
    /// `min(base · backoff^retry, max)`.
    pub fn timeout_s(&self, retry: u32) -> f64 {
        (self.base_timeout_s * self.backoff.powi(retry as i32)).min(self.max_timeout_s)
    }

    /// Expected extra transmissions per message on a link with per-message
    /// loss probability `loss`: `Σ_{k=1..A-1} loss^k`. Exactly 0.0 at
    /// `loss = 0`, monotonically increasing in `loss`.
    pub fn expected_retransmissions(&self, loss: f64) -> f64 {
        let loss = loss.clamp(0.0, 1.0);
        let mut p = 1.0;
        let mut extra = 0.0;
        for _ in 1..self.max_attempts {
            p *= loss;
            extra += p;
        }
        extra
    }

    /// Expected timeout stall per message, seconds: each retransmission
    /// wave waits out its (backed-off, capped) timer first.
    pub fn expected_timeout_stall_s(&self, loss: f64) -> f64 {
        let loss = loss.clamp(0.0, 1.0);
        let mut p = 1.0;
        let mut stall = 0.0;
        for k in 1..self.max_attempts {
            p *= loss;
            stall += p * self.timeout_s(k - 1);
        }
        stall
    }

    /// Probability a message is still undelivered after every attempt
    /// (`loss^max_attempts`) — reported, not priced.
    pub fn residual_loss(&self, loss: f64) -> f64 {
        loss.clamp(0.0, 1.0).powi(self.max_attempts as i32)
    }
}

/// Per-message loss probability induced by multi-tenant contention: each of
/// the `active_tenants - 1` co-tenants independently collides with a message
/// with probability `per_tenant_loss` (a switch-buffer drop under shared
/// NICs), so the composed rate is `1 - (1 - l)^(k-1)` — exactly 0.0 for a
/// sole tenant, monotone in both arguments, clamped like every link rate.
/// gp-elastic's `TenantScheduler` feeds this into [`RetryPolicy`]'s
/// closed-form expectations to price interference.
pub fn contention_loss_rate(active_tenants: u32, per_tenant_loss: f64) -> f64 {
    if active_tenants <= 1 {
        return 0.0;
    }
    let l = per_tenant_loss.clamp(0.0, 1.0);
    1.0 - (1.0 - l).powi(active_tenants as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_costs_exactly_nothing() {
        let p = RetryPolicy::reliable();
        assert_eq!(p.expected_retransmissions(0.0), 0.0);
        assert_eq!(p.expected_timeout_stall_s(0.0), 0.0);
        assert_eq!(p.residual_loss(0.0), 0.0);
    }

    #[test]
    fn costs_are_monotone_in_loss() {
        let p = RetryPolicy::reliable();
        let rates = [0.0, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9];
        for w in rates.windows(2) {
            assert!(p.expected_retransmissions(w[0]) < p.expected_retransmissions(w[1]));
            assert!(p.expected_timeout_stall_s(w[0]) < p.expected_timeout_stall_s(w[1]));
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::reliable();
        assert!((p.timeout_s(0) - 0.05).abs() < 1e-12);
        assert!((p.timeout_s(1) - 0.10).abs() < 1e-12);
        assert!((p.timeout_s(2) - 0.20).abs() < 1e-12);
        assert_eq!(p.timeout_s(10), 1.0, "capped at max_timeout_s");
        assert_eq!(p.timeout_s(60), 1.0, "no overflow blowup");
    }

    #[test]
    fn expectations_match_closed_form_on_small_attempts() {
        let p = RetryPolicy {
            enabled: true,
            max_attempts: 3,
            base_timeout_s: 0.1,
            backoff: 2.0,
            max_timeout_s: 10.0,
        };
        // Σ_{k=1..2} 0.5^k = 0.75; stall = 0.5*0.1 + 0.25*0.2 = 0.1.
        assert!((p.expected_retransmissions(0.5) - 0.75).abs() < 1e-12);
        assert!((p.expected_timeout_stall_s(0.5) - 0.1).abs() < 1e-12);
        assert!((p.residual_loss(0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn contention_is_free_alone_and_monotone_in_tenants() {
        assert_eq!(contention_loss_rate(0, 0.1), 0.0);
        assert_eq!(contention_loss_rate(1, 0.1), 0.0);
        let rates: Vec<f64> = (1..6).map(|k| contention_loss_rate(k, 0.1)).collect();
        for w in rates.windows(2) {
            assert!(w[0] < w[1], "more tenants must contend more: {rates:?}");
        }
        assert!((contention_loss_rate(2, 0.1) - 0.1).abs() < 1e-12);
        assert!((contention_loss_rate(3, 0.1) - 0.19).abs() < 1e-12);
        assert_eq!(contention_loss_rate(5, 2.0), 1.0, "clamped");
    }

    #[test]
    fn out_of_range_loss_is_clamped() {
        let p = RetryPolicy::reliable();
        assert_eq!(
            p.expected_retransmissions(1.5),
            p.expected_retransmissions(1.0)
        );
        assert_eq!(p.expected_retransmissions(-0.5), 0.0);
        assert!(p.expected_retransmissions(1.0).is_finite());
        assert!(p.expected_timeout_stall_s(1.0).is_finite());
    }
}
