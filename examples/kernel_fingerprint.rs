//! Prints a stable fingerprint of everything the ingress kernels can
//! observably change: full assignment state (edge partitions, sorted
//! replica lists, masters, counts) plus engine reports, over a spread of
//! graphs × partitioners × thread counts. Diffing this output across
//! commits proves (or refutes) kernel-level byte-identity.
//!
//! ```sh
//! cargo run --release --example kernel_fingerprint > fingerprint.txt
//! ```

use distgraph::apps::PageRank;
use distgraph::cluster::ClusterSpec;
use distgraph::core::{StreamingEdges, VertexId};
use distgraph::engine::{EngineConfig, SyncGas};
use distgraph::partition::strategies::{BiCut, Chunking, Vebo};
use distgraph::partition::{PartitionContext, PartitionOutcome, Partitioner, Strategy};

/// Order-sensitive FNV-style digest over the full observable assignment
/// state: edge partitions, sorted replica lists, masters, counts, RF,
/// mirrors, loader work, and state bytes.
fn assignment_digest(out: &PartitionOutcome, num_vertices: u64) -> u64 {
    let a = &out.assignment;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for p in a.edge_partitions() {
        mix(p.0 as u64);
    }
    for v in 0..num_vertices {
        let v = VertexId(v);
        mix(0xfeed);
        for &r in a.replicas(v) {
            mix(r as u64);
        }
        mix(a.master_of(v).0 as u64);
    }
    for &c in a.edge_counts() {
        mix(c);
    }
    mix((a.replication_factor() * 1e9) as u64);
    mix(a.total_mirrors());
    for c in a.replica_counts() {
        mix(c);
    }
    for c in a.master_counts() {
        mix(c);
    }
    for &w in &out.loader_work {
        mix((w * 1e9) as u64);
    }
    mix(out.state_bytes);
    h
}

fn main() {
    let graphs = vec![
        ("er", distgraph::gen::erdos_renyi(800, 6_000, 3)),
        ("ba", distgraph::gen::barabasi_albert(1_500, 6, 7)),
        (
            "road",
            distgraph::gen::road_network(
                &distgraph::gen::RoadNetworkParams {
                    width: 30,
                    height: 30,
                    ..Default::default()
                },
                5,
            ),
        ),
    ];
    let mut partitioners: Vec<(String, Box<dyn Partitioner>, u32)> = Strategy::ALL
        .into_iter()
        .map(|s| {
            let parts = if s == Strategy::Pds { 7 } else { 9 };
            (s.label().to_string(), s.build(), parts)
        })
        .collect();
    partitioners.push(("BiCut".into(), Box::new(BiCut::default()), 9));
    partitioners.push(("Chunking".into(), Box::new(Chunking), 9));
    partitioners.push(("VEBO".into(), Box::new(Vebo), 9));

    for (gname, graph) in &graphs {
        // The same edges as a compressed in-memory `.gps` store. Streamed
        // ingress consumes them in (src, dst)-sorted order, so its in-memory
        // reference is `store.to_edge_list()`, not the generator's order.
        let mut bytes = std::io::Cursor::new(Vec::new());
        distgraph::store::write_edge_list(&mut bytes, graph).expect("build store");
        let store =
            distgraph::store::GraphStore::open_bytes(bytes.into_inner()).expect("reopen store");
        let sorted = store.to_edge_list();
        for (pname, partitioner, parts) in &mut partitioners {
            for threads in [1u32, 2, 4] {
                let ctx = PartitionContext::new(*parts)
                    .with_seed(11)
                    .with_threads(threads);
                let out = partitioner.partition(graph, &ctx);
                let h = assignment_digest(&out, graph.num_vertices());
                let streamed = partitioner.partition(&store, &ctx);
                let stream_h = assignment_digest(&streamed, store.num_vertices());
                let sorted_h =
                    assignment_digest(&partitioner.partition(&sorted, &ctx), sorted.num_vertices());
                assert_eq!(
                    stream_h, sorted_h,
                    "{gname} {pname} t{threads}: streamed store ingress diverges from the \
                     in-memory partition of the same sorted edges"
                );
                println!(
                    "{gname} {pname} t{threads} assign={h:016x} stream={stream_h:016x} \
                     work={:.6} state_bytes={} passes={}",
                    out.loader_work.iter().sum::<f64>(),
                    out.state_bytes,
                    out.passes
                );
                if threads == 1 {
                    let config = EngineConfig::new(ClusterSpec::local_9()).with_threads(1);
                    let (states, report) =
                        SyncGas::new(config).run(graph, &out.assignment, &PageRank::fixed(3));
                    let mut h2: u64 = 0xcbf29ce484222325;
                    for s in format!("{states:?}|{report:?}").bytes() {
                        h2 ^= s as u64;
                        h2 = h2.wrapping_mul(0x100000001b3);
                    }
                    println!("{gname} {pname} engine={h2:016x}");
                }
            }
        }
    }
}
