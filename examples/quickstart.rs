//! Quickstart: partition a graph, inspect the partitioning quality, and run
//! PageRank on the simulated PowerGraph engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distgraph::apps::PageRank;
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{EngineConfig, SyncGas};
use distgraph::gen::{classify, Dataset};
use distgraph::partition::{PartitionContext, Strategy};

fn main() {
    // 1. Get a graph. Here: the LiveJournal analogue (heavy-tailed social
    //    network). You can also load your own edge list with
    //    `distgraph::core::io::read_edge_list("graph.txt")`.
    let graph = Dataset::LiveJournal.generate(0.2, 42);
    println!(
        "graph: {} vertices, {} edges, class = {}",
        graph.num_vertices(),
        graph.num_edges(),
        classify(&graph)
    );

    // 2. Partition it for a 9-machine cluster with two different strategies
    //    and compare replication factors (the paper's quality metric).
    let ctx = PartitionContext::new(9).with_seed(42);
    for strategy in [Strategy::Random, Strategy::Grid, Strategy::Hdrf] {
        let outcome = strategy.build().partition(&graph, &ctx);
        println!(
            "{:<10} replication factor {:.2}, edge imbalance {:.3}",
            strategy.label(),
            outcome.assignment.replication_factor(),
            outcome.assignment.balance().imbalance,
        );
    }

    // 3. Run ten iterations of PageRank on the simulated PowerGraph engine
    //    over the Grid partitioning.
    let outcome = Strategy::Grid.build().partition(&graph, &ctx);
    let engine = SyncGas::new(EngineConfig::new(ClusterSpec::local_9()));
    let (ranks, report) = engine.run(&graph, &outcome.assignment, &PageRank::fixed(10));

    let mut top: Vec<(usize, f64)> = ranks.iter().enumerate().map(|(v, r)| (v, r.0)).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nPageRank finished in {} supersteps", report.supersteps());
    println!(
        "simulated compute time {:.1}s, cluster-wide traffic {:.1} MiB",
        report.compute_seconds(),
        report.total_in_bytes() / (1 << 20) as f64
    );
    println!("top 5 vertices by rank:");
    for (v, r) in top.iter().take(5) {
        println!("  v{v}: {r:.2}");
    }
}
