//! Bipartite workload: a buyers×items graph (the paper's introduction names
//! "bipartite graphs between buyers and items" as a motivating graph class)
//! partitioned with the general-purpose strategies vs the bipartite-aware
//! BiCut extension.
//!
//! ```sh
//! cargo run --release --example bipartite_recommendation
//! ```

use distgraph::apps::PageRank;
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{EngineConfig, HybridGas};
use distgraph::gen::{bipartite, BipartiteParams};
use distgraph::partition::strategies::BiCut;
use distgraph::partition::{PartitionContext, Partitioner, Strategy};

fn main() {
    let params = BipartiteParams {
        users: 30_000,
        items: 1_500,
        mean_edges_per_user: 12.0,
        popularity_skew: 0.9,
    };
    let graph = bipartite(&params, 77);
    println!(
        "bipartite graph: {} users x {} items, {} purchase edges\n",
        params.users,
        params.items,
        graph.num_edges()
    );

    let ctx = PartitionContext::new(9).with_seed(77);
    let engine = HybridGas::new(EngineConfig::new(ClusterSpec::local_9()));
    println!(
        "{:<10} {:>6} {:>10} {:>14}",
        "strategy", "RF", "imbalance", "PR traffic"
    );

    let mut bench = |label: &str, mut p: Box<dyn Partitioner>| {
        let outcome = p.partition(&graph, &ctx);
        let (_, report) = engine.run(&graph, &outcome.assignment, &PageRank::fixed(10));
        println!(
            "{label:<10} {:>6.2} {:>10.3} {:>14}",
            outcome.assignment.replication_factor(),
            outcome.assignment.balance().imbalance,
            distgraph::cluster::table::fmt_bytes(report.total_in_bytes()),
        );
    };

    bench("BiCut", Box::new(BiCut::default()));
    for s in [
        Strategy::Hybrid,
        Strategy::Hdrf,
        Strategy::Grid,
        Strategy::TwoD,
        Strategy::Random,
    ] {
        bench(s.label(), s.build());
    }

    println!(
        "\nBiCut hashes every edge by its user endpoint: users (the big side)\n\
         keep exactly one replica, and only the {} items are replicated —\n\
         structure the general-purpose vertex-cuts cannot see.",
        params.items
    );
}
