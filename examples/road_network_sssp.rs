//! Low-degree, high-diameter workload: single-source shortest paths over a
//! road network — the setting where the greedy streaming heuristics
//! (Oblivious/HDRF) shine (§5.4.2).
//!
//! Shows: generating a road-network analogue, comparing greedy vs hash
//! strategies on replication factor, running undirected SSSP, and reading
//! distances back out.
//!
//! ```sh
//! cargo run --release --example road_network_sssp
//! ```

use distgraph::apps::{sssp::INFINITY, Sssp};
use distgraph::cluster::ClusterSpec;
use distgraph::core::VertexId;
use distgraph::engine::{EngineConfig, SyncGas};
use distgraph::gen::{road_network, RoadNetworkParams};
use distgraph::partition::{PartitionContext, Strategy};

fn main() {
    // A 150x150 junction grid with a few missing streets and highways.
    let graph = road_network(
        &RoadNetworkParams {
            width: 150,
            height: 150,
            ..Default::default()
        },
        2024,
    );
    println!(
        "road network: {} junctions, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let ctx = PartitionContext::new(9).with_seed(2024);
    println!("\nreplication factors on 9 machines (lower is better):");
    for strategy in [
        Strategy::Hdrf,
        Strategy::Oblivious,
        Strategy::Grid,
        Strategy::Random,
    ] {
        let rf = strategy
            .build()
            .partition(&graph, &ctx)
            .assignment
            .replication_factor();
        println!("  {:<10} {rf:.2}", strategy.label());
    }

    // Partition with the paper's recommendation for low-degree graphs and
    // run SSSP from the top-left junction.
    let outcome = Strategy::Hdrf.build().partition(&graph, &ctx);
    let engine = SyncGas::new(EngineConfig::new(ClusterSpec::local_9()));
    let source = VertexId(0);
    let (dist, report) = engine.run(&graph, &outcome.assignment, &Sssp::undirected(source));

    let reachable = dist.iter().filter(|&&d| d != INFINITY).count();
    let eccentricity = dist
        .iter()
        .filter(|&&d| d != INFINITY)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "\nSSSP from {source}: {} supersteps (frontier advances one hop per step)",
        report.supersteps()
    );
    println!(
        "reachable junctions: {reachable} / {}",
        graph.num_vertices()
    );
    println!("farthest reachable junction is {eccentricity} hops away");
    println!(
        "peak frontier size: {} junctions",
        report
            .steps
            .iter()
            .map(|s| s.active_vertices)
            .max()
            .unwrap_or(0)
    );
}
