//! The paper's motivating scenario: you have a social-network graph and a
//! short PageRank job — which partitioning strategy should you pick, and how
//! much does it matter?
//!
//! This example sweeps every strategy PowerLyra ships, measures ingress time,
//! compute time and replication factor on the simulated EC2-25 cluster, and
//! checks the outcome against the paper's decision tree (Fig 6.6).
//!
//! ```sh
//! cargo run --release --example social_network_pagerank
//! ```

use distgraph::advisor::{powerlyra, Workload};
use distgraph::apps::PageRank;
use distgraph::cluster::{ClusterSpec, CostRates};
use distgraph::engine::{EngineConfig, HybridGas};
use distgraph::gen::{classify, Dataset};
use distgraph::partition::{IngressReport, PartitionContext, Strategy};

fn main() {
    let graph = Dataset::Twitter.generate(0.3, 7);
    let spec = ClusterSpec::ec2_25();
    let class = classify(&graph);
    println!(
        "Twitter analogue: {} vertices, {} edges, class = {class}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let ctx = PartitionContext::new(spec.machines).with_seed(7);
    let rates = CostRates::default();
    let engine = HybridGas::new(EngineConfig::new(spec.clone()));

    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12}",
        "strategy", "RF", "ingress (s)", "compute (s)", "total (s)"
    );
    let mut best: Option<(Strategy, f64)> = None;
    for strategy in [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Oblivious,
        Strategy::Hybrid,
        Strategy::HybridGinger,
    ] {
        let outcome = strategy.build().partition(&graph, &ctx);
        let ingress = IngressReport::from_outcome(strategy.label(), &outcome, spec.machines);
        let ingress_s = rates.ingress_seconds(&ingress, &spec);
        let (_, report) = engine.run(&graph, &outcome.assignment, &PageRank::fixed(10));
        let compute_s = report.compute_seconds();
        let total = ingress_s + compute_s;
        println!(
            "{:<10} {:>6.2} {:>12.1} {:>12.1} {:>12.1}",
            strategy.label(),
            outcome.assignment.replication_factor(),
            ingress_s,
            compute_s,
            total
        );
        if best.map_or(true, |(_, t)| total < t) {
            best = Some((strategy, total));
        }
    }

    let (winner, _) = best.expect("at least one strategy ran");
    println!("\nmeasured winner: {}", winner.label());

    // What would the paper's decision tree have told us, without running
    // anything? PageRank is natural; a short job is ingress-dominated.
    let rec = powerlyra(&Workload {
        graph_class: class,
        machines: spec.machines,
        compute_ingress_ratio: 0.5,
        natural_app: true,
    });
    println!(
        "Fig 6.6 recommendation: {} (path: {})",
        rec.best().label(),
        rec.path.join(" → ")
    );
}
