//! Writing your own GAS vertex program and running it on all three engines.
//!
//! The program below computes, for every vertex, the *maximum vertex id
//! reachable by following edges backwards* — a toy analytics kernel that
//! demonstrates the full `VertexProgram` surface: direction selection,
//! gather/merge/apply, activation, and wire-size hints.
//!
//! ```sh
//! cargo run --release --example custom_vertex_program
//! ```

use distgraph::cluster::ClusterSpec;
use distgraph::core::VertexId;
use distgraph::engine::{
    ApplyInfo, Direction, EngineConfig, HybridGas, InitInfo, Pregel, PregelConfig, SyncGas,
    VertexProgram,
};
use distgraph::gen::barabasi_albert;
use distgraph::partition::{PartitionContext, Strategy};

/// Propagate the maximum id along reversed edges.
struct MaxBackward;

impl VertexProgram for MaxBackward {
    type State = u64;
    type Accum = u64;

    fn name(&self) -> &'static str {
        "max-backward"
    }

    // Gather from out-neighbors, push updates to in-neighbors: a natural
    // application in the paper's sense (one direction in, the other out).
    fn gather_direction(&self) -> Direction {
        Direction::Out
    }

    fn scatter_direction(&self) -> Direction {
        Direction::In
    }

    fn init(&self, v: VertexId, _: InitInfo) -> u64 {
        v.0
    }

    fn initially_active(&self, _: VertexId) -> bool {
        true
    }

    fn gather(&self, _: VertexId, _: VertexId, nbr_state: &u64, _: InitInfo) -> u64 {
        *nbr_state
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }

    fn apply(&self, _: VertexId, old: &u64, acc: Option<u64>, _: ApplyInfo) -> u64 {
        acc.map_or(*old, |a| a.max(*old))
    }

    fn accum_wire_bytes(&self) -> u64 {
        8
    }

    fn state_wire_bytes(&self) -> u64 {
        8
    }
}

fn main() {
    let graph = barabasi_albert(20_000, 6, 11);
    // This program gathers along OUT-edges, so pick the strategy that
    // co-locates out-edges (1D, which hashes by source). Picking a strategy
    // whose co-location direction matches the gather direction is exactly
    // the 1D-vs-1D-Target lesson of the paper's §8.2.3.
    let assignment = Strategy::OneD
        .build()
        .partition(&graph, &PartitionContext::new(9).with_seed(11))
        .assignment;
    let program = MaxBackward;
    println!(
        "program '{}' is natural: {}",
        program.name(),
        program.is_natural()
    );

    // PowerGraph-style synchronous GAS.
    let sync = SyncGas::new(EngineConfig::new(ClusterSpec::local_9()));
    let (s1, r1) = sync.run(&graph, &assignment, &program);

    // PowerLyra's hybrid engine — same semantics, less gather traffic for
    // this natural program.
    let hybrid = HybridGas::new(EngineConfig::new(ClusterSpec::local_9()));
    let (s2, r2) = hybrid.run(&graph, &assignment, &program);

    // GraphX-style Pregel.
    let pregel = Pregel::new(PregelConfig::new(
        EngineConfig::new(ClusterSpec::local_10()),
    ));
    let (s3, r3) = pregel
        .run(&graph, &assignment, &program)
        .expect("fits in memory");

    assert_eq!(s1, s2, "engines must agree on results");
    assert_eq!(s1, s3, "engines must agree on results");
    println!("all three engines agree on {} vertex states", s1.len());
    println!(
        "gather messages — PowerGraph: {}, PowerLyra: {} ({}% saved by local gather)",
        total_gather(&r1),
        total_gather(&r2),
        (100.0 * (1.0 - total_gather(&r2) as f64 / total_gather(&r1) as f64)) as u32
    );
    println!(
        "simulated compute seconds — sync {:.1}, hybrid {:.1}, pregel {:.1}",
        r1.compute_seconds(),
        r2.compute_seconds(),
        r3.compute_seconds()
    );
}

fn total_gather(r: &distgraph::engine::ComputeReport) -> u64 {
    r.steps.iter().map(|s| s.gather_messages).sum()
}
