//! Interactive-style walkthrough of the paper's decision trees: classify a
//! graph, describe the job, and get the recommendation each system's tree
//! produces — with the decision path spelled out.
//!
//! ```sh
//! cargo run --release --example strategy_advisor
//! ```

use distgraph::advisor::{
    graphx_all, powergraph, powerlyra, render_graphx_all_tree, render_powergraph_tree,
    render_powerlyra_tree, Workload,
};
use distgraph::gen::{classify, Dataset};

fn main() {
    println!("=== The paper's decision trees ===\n");
    println!("PowerGraph (Fig 5.9):\n{}", render_powergraph_tree());
    println!("PowerLyra (Fig 6.6):\n{}", render_powerlyra_tree());
    println!("GraphX-all (Fig 9.3):\n{}", render_graphx_all_tree());

    // Walk three representative scenarios through the trees.
    let scenarios = [
        (
            "30-iteration PageRank on a web crawl, 25 machines",
            Dataset::UkWeb,
            25,
            5.0,
            true,
        ),
        (
            "one-shot WCC on a social network, 16 machines",
            Dataset::Twitter,
            16,
            0.4,
            false,
        ),
        (
            "repeated SSSP on a road network, 10 machines",
            Dataset::RoadNetUsa,
            10,
            3.0,
            true,
        ),
    ];

    for (desc, dataset, machines, ratio, natural) in scenarios {
        // Classify the actual graph rather than trusting the label.
        let graph = dataset.generate(0.1, 1);
        let class = classify(&graph);
        let w = Workload {
            graph_class: class,
            machines,
            compute_ingress_ratio: ratio,
            natural_app: natural,
        };
        println!("--- {desc} ---");
        println!("classified as: {class}");
        let pg = powergraph(&w);
        println!(
            "  PowerGraph: {}   [{}]",
            pg.strategies
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join("/"),
            pg.path.join(" → ")
        );
        let pl = powerlyra(&w);
        println!(
            "  PowerLyra : {}   [{}]",
            pl.strategies
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join("/"),
            pl.path.join(" → ")
        );
        let gx = graphx_all(&w);
        println!(
            "  GraphX    : {}   [{}]",
            gx.strategies
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join("/"),
            gx.path.join(" → ")
        );
        println!();
    }
}
