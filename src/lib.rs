//! # distgraph — umbrella crate
//!
//! Re-exports the full public API of the workspace reproducing *"An
//! Experimental Comparison of Partitioning Strategies in Distributed Graph
//! Processing"* (VLDB 2017). See the README for the architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! The individual crates:
//!
//! * [`core`] (gp-core) — graph substrate: ids, edge lists, CSR, hashing, I/O.
//! * [`gen`] (gp-gen) — synthetic dataset analogues + degree analysis.
//! * [`partition`] (gp-partition) — the eleven partitioning strategies.
//! * [`cluster`] (gp-cluster) — simulated cluster and resource models.
//! * [`fault`] (gp-fault) — fault injection, checkpointing, recovery pricing.
//! * [`net`] (gp-net) — unreliable network model: retry/backoff, speculation.
//! * [`elastic`] (gp-elastic) — mid-job scale-out/scale-in, spot preemption,
//!   multi-tenant scheduling.
//! * [`par`] (gp-par) — deterministic bounded parallelism (`--threads`).
//! * [`engine`] (gp-engine) — GAS / Hybrid / Pregel engines.
//! * [`serve`] (gp-serve) — long-running serving: churn, queries, rebalance.
//! * [`store`] (gp-store) — compressed on-disk graphs + streaming ingress.
//! * [`apps`] (gp-apps) — PageRank, WCC, k-core, SSSP, coloring.
//! * [`advisor`] (gp-advisor) — the paper's decision trees as code.
//! * [`telemetry`] (gp-telemetry) — spans, metrics, Chrome-trace profiling.

pub use gp_advisor as advisor;
pub use gp_apps as apps;
pub use gp_cluster as cluster;
pub use gp_core as core;
pub use gp_elastic as elastic;
pub use gp_engine as engine;
pub use gp_fault as fault;
pub use gp_gen as gen;
pub use gp_net as net;
pub use gp_par as par;
pub use gp_partition as partition;
pub use gp_serve as serve;
pub use gp_store as store;
pub use gp_telemetry as telemetry;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
