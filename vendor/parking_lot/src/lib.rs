//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no `Result`, poison recovered transparently). Only the types
//! this workspace touches are provided.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion without lock poisoning in the API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning like parking_lot (which
    /// has no poisoning at all).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
