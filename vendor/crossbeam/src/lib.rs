//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the scoped-thread API this workspace uses
//! (`crossbeam::thread::scope`, `Scope::spawn`, `ScopedJoinHandle::join`)
//! implemented over `std::thread::scope`, which has offered the same
//! structured-concurrency guarantees since Rust 1.63. Threads are real —
//! the parallel ingress loaders still run concurrently.

pub mod thread {
    use std::any::Any;

    /// A scope handed to the `scope` closure; spawned threads may borrow
    /// from the enclosing environment.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. The `Result` mirrors crossbeam's signature (an `Err` would
    /// carry a panic payload; `std::thread::scope` propagates panics
    /// instead, so in practice this is always `Ok`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("thread")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }
}
