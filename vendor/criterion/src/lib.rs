//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench files compiling and
//! runnable without the statistics machinery: each benchmark body is timed
//! over a single `iter` pass and the wall time is printed. Good enough to
//! smoke-test bench code paths and get order-of-magnitude numbers; not a
//! replacement for real criterion runs.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness state. Only `sample_size` is accepted (and ignored
/// beyond being stored), since we run one pass per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Builder-style sample-size setter, kept for API compatibility.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for following benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        self.run_one(id.into(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; present for API compatibility).
    pub fn finish(self) {}

    fn run_one(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            elapsed: std::time::Duration::ZERO,
        };
        f(&mut bencher);
        let secs = bencher.elapsed.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / secs)
            }
            _ => String::new(),
        };
        eprintln!("  {}/{}: {secs:.6} s{rate}", self.name, id.id);
    }
}

/// Passed to each benchmark body; `iter` runs the routine once and records
/// its wall time.
pub struct Bencher {
    elapsed: std::time::Duration,
}

impl Bencher {
    /// Time one execution of `routine` (single pass, not sampled).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let value = routine();
        self.elapsed += start.elapsed();
        black_box(value);
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sums");
        group.throughput(Throughput::Elements(1000));
        group.bench_function(BenchmarkId::new("iter", 1000), |b| {
            b.iter(|| (0u64..1000).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = sample_bench
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
