//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's DSL this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, integer-range
//! and tuple strategies, [`collection::vec`], [`test_runner::ProptestConfig`]
//! and the `prop_assert*` macros — with a fully deterministic case generator
//! (the case RNG is derived from the test's module path and case index, so
//! failures reproduce on every run). Shrinking is intentionally not
//! implemented: a failing case panics with its inputs' `Debug` form instead.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator for case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair — stable across runs and platforms.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — as in proptest.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The property-test entry macro. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters use the `name in strategy` binding form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assertion macros. Unlike upstream (which records a failure and shrinks),
/// these panic immediately — deterministic generation makes the failing case
/// reproducible without shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn prop_map_composes(pair in (0u64..4, 1u64..5).prop_map(|(a, b)| a * 10 + b) ) {
            prop_assert!(pair >= 1 && pair < 35);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0u64..1000);
        let a: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
