//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and the [`RngExt`] sampling methods
//! (`random`, `random_range`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! simulation requires (statistical-quality parity with upstream `rand` is
//! explicitly a non-goal).

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to u64 (ranges in this workspace are non-negative).
    fn to_u64(self) -> u64;
    /// Narrow back after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Sampling conveniences, mirroring `rand`'s modern (0.9+) method names.
pub trait RngExt: RngCore {
    /// Uniform sample of `T` over its natural full range (`[0, 1)` for
    /// floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, like upstream.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); span is far below 2^63 in
        // practice, so a single rejection loop converges immediately.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return T::from_u64(lo + raw % span);
            }
        }
    }

    /// Uniform bool with the given probability of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
