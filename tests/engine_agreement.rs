//! Cross-engine semantic agreement: partitioning and engine choice may
//! change cost, but never results.

use distgraph::apps::{coloring, Coloring, KCore, PageRank, Sssp, Wcc};
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{AsyncGas, EngineConfig, HybridGas, Pregel, PregelConfig, SyncGas};
use distgraph::gen::Dataset;
use distgraph::partition::{PartitionContext, Strategy};

fn assignment(
    g: &distgraph::core::EdgeList,
    s: Strategy,
    p: u32,
) -> distgraph::partition::Assignment {
    s.build()
        .partition(g, &PartitionContext::new(p).with_seed(5))
        .assignment
}

#[test]
fn results_are_invariant_across_strategies_and_engines() {
    let g = Dataset::LiveJournal.generate(0.1, 5);
    let spec = ClusterSpec::local_9();
    let sync = SyncGas::new(EngineConfig::new(spec.clone()));
    let hybrid = HybridGas::new(EngineConfig::new(spec.clone()));
    let pregel = Pregel::new(PregelConfig::new(EngineConfig::new(spec)));

    let mut reference: Option<Vec<u64>> = None;
    for strategy in [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Hdrf,
        Strategy::Hybrid,
    ] {
        let a = assignment(&g, strategy, 9);
        let (s1, _) = sync.run(&g, &a, &Wcc);
        let (s2, _) = hybrid.run(&g, &a, &Wcc);
        let (s3, _) = pregel.run(&g, &a, &Wcc).expect("fits");
        assert_eq!(s1, s2, "{strategy:?}: sync vs hybrid");
        assert_eq!(s1, s3, "{strategy:?}: sync vs pregel");
        if let Some(r) = &reference {
            assert_eq!(r, &s1, "{strategy:?}: strategy changed WCC results");
        }
        reference = Some(s1);
    }
}

#[test]
fn pagerank_agrees_across_engines_to_numeric_precision() {
    let g = Dataset::UkWeb.generate(0.05, 9);
    let a = assignment(&g, Strategy::Hybrid, 9);
    let spec = ClusterSpec::local_9();
    let (r1, _) = SyncGas::new(EngineConfig::new(spec.clone())).run(&g, &a, &PageRank::fixed(10));
    let (r2, _) = HybridGas::new(EngineConfig::new(spec.clone())).run(&g, &a, &PageRank::fixed(10));
    let (r3, _) = Pregel::new(PregelConfig::new(EngineConfig::new(spec)))
        .run(&g, &a, &PageRank::fixed(10))
        .expect("fits");
    for i in 0..r1.len() {
        assert!((r1[i].0 - r2[i].0).abs() < 1e-12);
        assert!((r1[i].0 - r3[i].0).abs() < 1e-12);
    }
}

#[test]
fn sssp_and_kcore_agree_between_sync_and_pregel() {
    let g = Dataset::RoadNetCa.generate(0.1, 3);
    let a = assignment(&g, Strategy::Oblivious, 9);
    let spec = ClusterSpec::local_9();
    let sync = SyncGas::new(EngineConfig::new(spec.clone()));
    let pregel = Pregel::new(PregelConfig::new(EngineConfig::new(spec)));

    let sssp = Sssp::undirected(0u64);
    let (d1, _) = sync.run(&g, &a, &sssp);
    let (d2, _) = pregel.run(&g, &a, &sssp).expect("fits");
    assert_eq!(d1, d2);

    let kcore = KCore::new(3);
    let (k1, _) = sync.run(&g, &a, &kcore);
    let (k2, _) = pregel.run(&g, &a, &kcore).expect("fits");
    assert_eq!(k1, k2);
}

#[test]
fn async_coloring_is_proper_for_every_strategy() {
    let g = Dataset::LiveJournal.generate(0.05, 7);
    let spec = ClusterSpec::local_9();
    let engine = AsyncGas::new(EngineConfig::new(spec));
    for strategy in [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Oblivious,
        Strategy::Hybrid,
    ] {
        let a = assignment(&g, strategy, 9);
        let (colors, report) = engine.run(&g, &a, &Coloring);
        assert!(report.converged, "{strategy:?} did not converge");
        assert!(
            coloring::is_proper_coloring(&g, &colors),
            "{strategy:?} produced an improper coloring"
        );
    }
}
