//! The paper's individual empirical claims, checked end-to-end.

use distgraph::apps::PageRank;
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{EngineConfig, HybridGas, SyncGas};
use distgraph::gen::{classify, Dataset, GraphClass};
use distgraph::partition::{PartitionContext, Strategy};
use gp_bench::{App, EngineKind, Pipeline};

const SEED: u64 = 42;

#[test]
fn dataset_analogues_have_the_papers_degree_classes() {
    // Table 4.2's Type column.
    for d in Dataset::ALL {
        let g = d.generate(0.25, SEED);
        assert_eq!(classify(&g), d.spec().class, "{d}");
    }
}

#[test]
fn asymmetric_random_is_worse_than_canonical_random() {
    // §8.2.2, on every dataset class.
    for d in [Dataset::RoadNetCa, Dataset::Twitter, Dataset::UkWeb] {
        let g = d.generate(0.2, SEED);
        let ctx = PartitionContext::new(9).with_seed(SEED);
        let canon = Strategy::Random
            .build()
            .partition(&g, &ctx)
            .assignment
            .replication_factor();
        let asym = Strategy::AsymmetricRandom
            .build()
            .partition(&g, &ctx)
            .assignment
            .replication_factor();
        assert!(asym >= canon, "{d}: asym {asym:.2} vs canonical {canon:.2}");
    }
}

#[test]
fn grid_beats_heuristics_on_heavy_tailed_but_not_power_law() {
    // Fig 5.6's central contrast.
    let ctx = PartitionContext::new(25).with_seed(SEED);
    let heavy = Dataset::Twitter.generate(0.25, SEED);
    let grid_h = Strategy::Grid
        .build()
        .partition(&heavy, &ctx)
        .assignment
        .replication_factor();
    let hdrf_h = Strategy::Hdrf
        .build()
        .partition(&heavy, &ctx)
        .assignment
        .replication_factor();
    assert!(
        grid_h < hdrf_h,
        "heavy-tailed: Grid {grid_h:.2} should beat HDRF {hdrf_h:.2}"
    );

    let web = Dataset::UkWeb.generate(0.25, SEED);
    let grid_w = Strategy::Grid
        .build()
        .partition(&web, &ctx)
        .assignment
        .replication_factor();
    let hdrf_w = Strategy::Hdrf
        .build()
        .partition(&web, &ctx)
        .assignment
        .replication_factor();
    assert!(
        hdrf_w < grid_w,
        "power-law: HDRF {hdrf_w:.2} should beat Grid {grid_w:.2}"
    );
}

#[test]
fn heuristics_have_lowest_rf_on_road_networks() {
    let g = Dataset::RoadNetUsa.generate(0.15, SEED);
    let ctx = PartitionContext::new(9).with_seed(SEED);
    let rf = |s: Strategy| {
        s.build()
            .partition(&g, &ctx)
            .assignment
            .replication_factor()
    };
    let hdrf = rf(Strategy::Hdrf);
    assert!(hdrf < rf(Strategy::Grid));
    assert!(hdrf < rf(Strategy::Random));
    assert!(hdrf < rf(Strategy::Hybrid));
}

#[test]
fn ginger_tradeoff_matches_section_6_4_4() {
    // Slower ingress, higher memory, only slightly better RF than Hybrid.
    let g = Dataset::UkWeb.generate(0.2, SEED);
    let ctx = PartitionContext::new(25).with_seed(SEED);
    let hybrid = Strategy::Hybrid.build().partition(&g, &ctx);
    let ginger = Strategy::HybridGinger.build().partition(&g, &ctx);
    let hybrid_work: f64 = hybrid.loader_work.iter().sum();
    let ginger_work: f64 = ginger.loader_work.iter().sum();
    assert!(
        ginger_work > 1.2 * hybrid_work,
        "Ginger ingress should be significantly slower"
    );
    assert!(
        ginger.state_bytes > hybrid.state_bytes,
        "Ginger should use more memory"
    );
    let rf_h = hybrid.assignment.replication_factor();
    let rf_g = ginger.assignment.replication_factor();
    assert!(
        rf_g <= rf_h * 1.02,
        "Ginger RF {rf_g:.2} should not exceed Hybrid {rf_h:.2}"
    );
    assert!(
        rf_g >= rf_h * 0.75,
        "Ginger RF gain should be modest, got {rf_g:.2} vs {rf_h:.2}"
    );
}

#[test]
fn hybrid_strategies_save_network_for_natural_apps_only() {
    // Fig 6.1 / §6.4.1.
    let g = Dataset::UkWeb.generate(0.2, SEED);
    let ctx = PartitionContext::new(25).with_seed(SEED);
    let hybrid = Strategy::Hybrid.build().partition(&g, &ctx).assignment;
    let spec = ClusterSpec::ec2_25();
    let sync = SyncGas::new(EngineConfig::new(spec.clone()));
    let lyra = HybridGas::new(EngineConfig::new(spec));
    // Natural app: PageRank.
    let (_, sync_rep) = sync.run(&g, &hybrid, &PageRank::fixed(5));
    let (_, lyra_rep) = lyra.run(&g, &hybrid, &PageRank::fixed(5));
    assert!(
        lyra_rep.total_in_bytes() < 0.7 * sync_rep.total_in_bytes(),
        "hybrid engine should cut PageRank traffic: {} vs {}",
        lyra_rep.total_in_bytes(),
        sync_rep.total_in_bytes()
    );
    // Non-natural app: WCC sees little saving.
    let (_, sync_wcc) = sync.run(&g, &hybrid, &distgraph::apps::Wcc);
    let (_, lyra_wcc) = lyra.run(&g, &hybrid, &distgraph::apps::Wcc);
    assert!(
        lyra_wcc.total_in_bytes() > 0.9 * sync_wcc.total_in_bytes(),
        "undirected apps cannot exploit in-edge co-location"
    );
}

#[test]
fn one_d_target_beats_one_d_for_pagerank_under_powerlyra() {
    // §8.2.3 / Fig 8.3.
    let mut pipeline = Pipeline::new(0.2, SEED);
    let spec = ClusterSpec::local_9();
    let run = |p: &mut Pipeline, s| {
        p.run(
            Dataset::Twitter,
            s,
            &spec,
            EngineKind::PowerLyra,
            App::PageRankFixed(10),
        )
    };
    let oned = run(&mut pipeline, Strategy::OneD);
    let oned_t = run(&mut pipeline, Strategy::OneDTarget);
    assert!(
        oned_t.mean_net_in_bytes < oned.mean_net_in_bytes,
        "1D-Target {} should use less network than 1D {}",
        oned_t.mean_net_in_bytes,
        oned.mean_net_in_bytes
    );
}

#[test]
fn graphx_cannot_load_twitter_scale_graphs_in_small_executors() {
    // §7.3: "GraphX ran out of memory while trying to load Twitter".
    let mut pipeline = Pipeline::new(0.3, SEED);
    let spec = ClusterSpec::local_10();
    let job = pipeline.run(
        Dataset::Twitter,
        Strategy::Random,
        &spec,
        EngineKind::GraphX {
            partitions_per_machine: 16,
            executor_memory_bytes: 1 << 20,
        },
        App::PageRankFixed(10),
    );
    assert!(job.failed);
    // The same graph loads fine with ample executors.
    let ok = pipeline.run(
        Dataset::Twitter,
        Strategy::Random,
        &spec,
        EngineKind::graphx_default(),
        App::PageRankFixed(10),
    );
    assert!(!ok.failed);
}

#[test]
fn graphx_partitioning_speeds_are_similar_for_native_strategies() {
    // §7.4: "all of GraphX's partitioning strategies are stateless and
    // hash-based, they all run at similar speeds".
    let mut pipeline = Pipeline::new(0.2, SEED);
    let spec = ClusterSpec::local_10();
    let times: Vec<f64> = [
        Strategy::Random,
        Strategy::AsymmetricRandom,
        Strategy::OneD,
        Strategy::TwoD,
    ]
    .iter()
    .map(|&s| {
        pipeline
            .ingress(Dataset::LiveJournal, s, &spec, EngineKind::graphx_default())
            .1
    })
    .collect();
    let max = times.iter().copied().fold(f64::MIN, f64::max);
    let min = times.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.25,
        "hash strategies should partition at similar speed: {times:?}"
    );
}

#[test]
fn peak_memory_doubles_across_pagerank_strategies_in_powerlyra() {
    // §1.1: "2x difference in PageRank peak memory utilization between
    // different partitioning strategies in PowerLyra".
    let mut pipeline = Pipeline::new(0.25, SEED);
    let spec = ClusterSpec::ec2_25();
    let mems: Vec<f64> = [
        Strategy::Random,
        Strategy::Grid,
        Strategy::Oblivious,
        Strategy::Hybrid,
        Strategy::HybridGinger,
    ]
    .iter()
    .map(|&s| {
        pipeline
            .run(
                Dataset::UkWeb,
                s,
                &spec,
                EngineKind::PowerLyra,
                App::PageRankFixed(10),
            )
            .peak_memory_bytes
    })
    .collect();
    let max = mems.iter().copied().fold(f64::MIN, f64::max);
    let min = mems.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        max / min > 1.5,
        "peak memory spread should be large: {mems:?}"
    );
}

#[test]
fn classification_is_robust_across_seeds_and_scales() {
    for seed in [1u64, 7, 99] {
        for scale in [0.15, 0.35] {
            assert_eq!(
                classify(&Dataset::RoadNetCa.generate(scale, seed)),
                GraphClass::LowDegree
            );
            assert_eq!(
                classify(&Dataset::Twitter.generate(scale, seed)),
                GraphClass::HeavyTailed
            );
            assert_eq!(
                classify(&Dataset::UkWeb.generate(scale, seed)),
                GraphClass::PowerLaw
            );
        }
    }
}
