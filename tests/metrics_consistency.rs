//! Cross-crate consistency of the §4.3 metrics: the quantities the harness
//! reports must agree with each other no matter which engine, strategy or
//! application produced them.

use distgraph::apps::{PageRank, Wcc};
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{EngineConfig, HybridGas, Pregel, PregelConfig, SyncGas};
use distgraph::gen::Dataset;
use distgraph::partition::{PartitionContext, Strategy};
use gp_bench::{App, EngineKind, Pipeline};

fn graph() -> distgraph::core::EdgeList {
    Dataset::LiveJournal.generate(0.08, 11)
}

fn assignment(parts: u32) -> (distgraph::core::EdgeList, distgraph::partition::Assignment) {
    let g = graph();
    let a = Strategy::Grid
        .build()
        .partition(&g, &PartitionContext::new(parts).with_seed(11));
    (g, a.assignment)
}

#[test]
fn per_step_bytes_sum_to_report_totals() {
    let (g, a) = assignment(9);
    let (_, report) =
        SyncGas::new(EngineConfig::new(ClusterSpec::local_9())).run(&g, &a, &PageRank::fixed(5));
    let manual: f64 = report
        .steps
        .iter()
        .flat_map(|s| s.machine_in_bytes.iter())
        .sum();
    assert!((report.total_in_bytes() - manual).abs() < 1e-6);
    assert!(
        (report.mean_machine_in_bytes() * 9.0 - manual).abs() < 1e-6,
        "mean x machines must equal total"
    );
}

#[test]
fn wall_time_equals_cumulative_tail() {
    let (g, a) = assignment(9);
    let (_, report) = SyncGas::new(EngineConfig::new(ClusterSpec::local_9())).run(&g, &a, &Wcc);
    let cumulative = report.cumulative_seconds();
    assert_eq!(cumulative.len() as u32, report.supersteps());
    assert!((cumulative.last().unwrap() - report.compute_seconds()).abs() < 1e-9);
    // Strictly increasing.
    assert!(cumulative.windows(2).all(|w| w[1] > w[0]));
}

#[test]
fn single_partition_is_traffic_free_on_every_engine() {
    let g = graph();
    let a = Strategy::Random
        .build()
        .partition(&g, &PartitionContext::new(1).with_seed(11))
        .assignment;
    let config = EngineConfig::new(ClusterSpec::local_9());
    let (_, sync) = SyncGas::new(config.clone()).run(&g, &a, &PageRank::fixed(3));
    assert_eq!(sync.total_in_bytes(), 0.0);
    let (_, hybrid) = HybridGas::new(config.clone()).run(&g, &a, &PageRank::fixed(3));
    assert_eq!(hybrid.total_in_bytes(), 0.0);
    let (_, pregel) = Pregel::new(PregelConfig::new(config))
        .run(&g, &a, &PageRank::fixed(3))
        .expect("fits");
    assert_eq!(pregel.total_in_bytes(), 0.0);
}

#[test]
fn hybrid_engine_never_sends_more_gathers_than_sync() {
    let g = graph();
    let config = EngineConfig::new(ClusterSpec::local_9());
    for strategy in [Strategy::Random, Strategy::Hybrid, Strategy::OneDTarget] {
        let a = strategy
            .build()
            .partition(&g, &PartitionContext::new(9).with_seed(11))
            .assignment;
        let gm = |r: &distgraph::engine::ComputeReport| {
            r.steps.iter().map(|s| s.gather_messages).sum::<u64>()
        };
        let (_, sync) = SyncGas::new(config.clone()).run(&g, &a, &PageRank::fixed(3));
        let (_, hybrid) = HybridGas::new(config.clone()).run(&g, &a, &PageRank::fixed(3));
        assert!(
            gm(&hybrid) <= gm(&sync),
            "{strategy:?}: hybrid {} vs sync {}",
            gm(&hybrid),
            gm(&sync)
        );
    }
}

#[test]
fn job_total_is_ingress_plus_compute() {
    let mut p = Pipeline::new(0.05, 3);
    let spec = ClusterSpec::local_9();
    let job = p.run(
        Dataset::RoadNetCa,
        Strategy::Hdrf,
        &spec,
        EngineKind::PowerGraph,
        App::Wcc,
    );
    assert!((job.total_seconds() - (job.ingress_seconds + job.compute_seconds)).abs() < 1e-9);
    assert_eq!(job.cpu_percents.len(), spec.machines as usize);
    assert!(job.cpu_percents.iter().all(|&c| (0.0..=100.0).contains(&c)));
}

#[test]
fn pipeline_is_deterministic_across_instances() {
    let run = || {
        let mut p = Pipeline::new(0.05, 7);
        p.run(
            Dataset::UkWeb,
            Strategy::Hybrid,
            &ClusterSpec::ec2_16(),
            EngineKind::PowerLyra,
            App::PageRankFixed(4),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.replication_factor, b.replication_factor);
    assert_eq!(a.ingress_seconds, b.ingress_seconds);
    assert_eq!(a.compute_seconds, b.compute_seconds);
    assert_eq!(a.mean_net_in_bytes, b.mean_net_in_bytes);
}

#[test]
fn ingress_seconds_scale_with_dataset_scale() {
    let spec = ClusterSpec::ec2_25();
    let ingress = |scale: f64| {
        let mut p = Pipeline::new(scale, 5);
        p.ingress(
            Dataset::Twitter,
            Strategy::Grid,
            &spec,
            EngineKind::PowerGraph,
        )
        .1
    };
    let small = ingress(0.05);
    let large = ingress(0.25);
    assert!(large > 3.0 * small, "large {large} vs small {small}");
}

#[test]
fn graphx_engine_reports_more_partitions_but_same_machines() {
    let mut p = Pipeline::new(0.05, 9);
    let spec = ClusterSpec::local_10();
    let job = p.run(
        Dataset::RoadNetCa,
        Strategy::TwoD,
        &spec,
        EngineKind::graphx_default(),
        App::Wcc,
    );
    // CPU percentages are per machine (10), not per partition (160).
    assert_eq!(job.cpu_percents.len(), 10);
    assert!(!job.failed);
}
