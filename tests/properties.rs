//! Property-based tests (proptest) over randomly generated graphs:
//! structural invariants every strategy and engine must preserve.

use distgraph::apps::{Sssp, Wcc};
use distgraph::cluster::ClusterSpec;
use distgraph::core::{Edge, EdgeList, VertexId};
use distgraph::engine::{EngineConfig, ReplicaTable, SyncGas};
use distgraph::partition::{PartitionContext, Strategy};
use proptest::prelude::*;
// The partition::Strategy enum shadows proptest's Strategy trait; re-import
// the trait anonymously for method syntax.
use proptest::strategy::Strategy as _;

/// Arbitrary small graph: up to 60 vertices, up to 240 edges.
fn arb_graph() -> impl proptest::strategy::Strategy<Value = EdgeList> {
    (
        2u64..60,
        proptest::collection::vec((0u64..60, 0u64..60), 1..240),
    )
        .prop_map(|(n, pairs)| {
            let edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(a, b)| Edge::new(a % n, b % n))
                .collect();
            EdgeList::with_vertex_count(edges, n).expect("ids in range")
        })
}

/// All strategies that run on an arbitrary partition count.
fn all_unconstrained() -> Vec<Strategy> {
    Strategy::ALL
        .into_iter()
        .filter(|s| *s != Strategy::Pds)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_strategy_produces_a_valid_assignment(
        graph in arb_graph(),
        parts in 2u32..12,
        seed in 0u64..1000,
    ) {
        for strategy in all_unconstrained() {
            let ctx = PartitionContext::new(parts).with_seed(seed);
            let out = strategy.build().partition(&graph, &ctx);
            let a = &out.assignment;
            // One partition per edge, all in range.
            prop_assert_eq!(a.num_edges(), graph.num_edges());
            for i in 0..a.num_edges() {
                prop_assert!(a.edge_partition(i).0 < parts, "{}: partition out of range", strategy);
            }
            // Edge counts account for every edge.
            prop_assert_eq!(a.edge_counts().iter().sum::<u64>(), graph.num_edges() as u64);
            // Every vertex with an edge has 1..=parts replicas, and its
            // master is one of them.
            for v in 0..graph.num_vertices() {
                let v = VertexId(v);
                let r = a.replica_count(v);
                prop_assert!(r <= parts);
                if r > 0 {
                    prop_assert!(a.replicas(v).contains(&a.master_of(v).0));
                }
            }
            // RF bounded by [1, parts].
            let rf = a.replication_factor();
            if graph.num_edges() > 0 {
                prop_assert!((1.0..=parts as f64).contains(&rf), "{}: rf {}", strategy, rf);
            }
            // Ingress accounting is well-formed.
            prop_assert_eq!(out.loader_work.len(), ctx.num_loaders as usize);
            prop_assert!(out.loader_work.iter().all(|w| w.is_finite() && *w >= 0.0));
            prop_assert!(out.passes >= 1);
        }
    }

    #[test]
    fn replica_table_is_consistent_with_degrees(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let ctx = PartitionContext::new(6).with_seed(seed);
        for strategy in [Strategy::Random, Strategy::Hdrf, Strategy::Hybrid, Strategy::TwoD] {
            let a = strategy.build().partition(&graph, &ctx).assignment;
            let table = ReplicaTable::build(&graph, &a);
            let deg = graph.degrees();
            for v in 0..graph.num_vertices() {
                let v = VertexId(v);
                let (tin, tout) = table
                    .replicas(v)
                    .iter()
                    .fold((0u32, 0u32), |(i, o), r| (i + r.local_in, o + r.local_out));
                prop_assert_eq!(tin, deg.in_degree(v));
                prop_assert_eq!(tout, deg.out_degree(v));
                // Every replica hosts at least one incident edge.
                for r in table.replicas(v) {
                    prop_assert!(r.local_in + r.local_out > 0);
                }
            }
        }
    }

    #[test]
    fn two_d_replication_bound_holds(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let parts = 16u32;
        let ctx = PartitionContext::new(parts).with_seed(seed);
        let a = Strategy::TwoD.build().partition(&graph, &ctx).assignment;
        let bound = 2 * (parts as f64).sqrt().ceil() as u32 - 1;
        for v in 0..graph.num_vertices() {
            prop_assert!(a.replica_count(VertexId(v)) <= bound);
        }
    }

    #[test]
    fn wcc_matches_union_find_regardless_of_partitioning(
        graph in arb_graph(),
        seed in 0u64..100,
    ) {
        // Reference: union-find over the undirected view.
        let n = graph.num_vertices() as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for e in graph.edges() {
            let (a, b) = (find(&mut parent, e.src.index()), find(&mut parent, e.dst.index()));
            if a != b {
                parent[a] = b;
            }
        }
        // Canonical labels: minimum vertex id per component.
        let mut min_label = vec![u64::MAX; n];
        for v in 0..n {
            let root = find(&mut parent, v);
            min_label[root] = min_label[root].min(v as u64);
        }
        let expected: Vec<u64> = (0..n).map(|v| min_label[find(&mut parent, v)]).collect();

        let ctx = PartitionContext::new(5).with_seed(seed);
        let a = Strategy::Oblivious.build().partition(&graph, &ctx).assignment;
        let engine = SyncGas::new(EngineConfig::new(ClusterSpec::local_9()));
        let (labels, report) = engine.run(&graph, &a, &Wcc);
        prop_assert!(report.converged);
        prop_assert_eq!(labels, expected);
    }

    #[test]
    fn sssp_distances_satisfy_triangle_property(
        graph in arb_graph(),
        seed in 0u64..100,
    ) {
        let ctx = PartitionContext::new(4).with_seed(seed);
        let a = Strategy::Random.build().partition(&graph, &ctx).assignment;
        let engine = SyncGas::new(EngineConfig::new(ClusterSpec::local_9()));
        let (dist, _) = engine.run(&graph, &a, &Sssp::directed(0u64));
        prop_assert_eq!(dist[0], 0);
        // Along every edge, d(dst) <= d(src) + 1 (and reached vertices have
        // a reaching predecessor).
        for e in graph.edges() {
            let (ds, dd) = (dist[e.src.index()], dist[e.dst.index()]);
            if ds != u32::MAX {
                prop_assert!(dd <= ds + 1, "edge {}->{}: {} vs {}", e.src, e.dst, ds, dd);
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if d != u32::MAX && d > 0 {
                let has_predecessor = graph.edges().iter().any(|e| {
                    e.dst.index() == v && dist[e.src.index()] == d - 1
                });
                prop_assert!(has_predecessor, "v{} at distance {} unreachable", v, d);
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic(
        graph in arb_graph(),
        parts in 2u32..10,
        seed in 0u64..1000,
    ) {
        for strategy in [Strategy::Oblivious, Strategy::Hdrf, Strategy::HybridGinger] {
            let ctx = PartitionContext::new(parts).with_seed(seed);
            let a = strategy.build().partition(&graph, &ctx);
            let b = strategy.build().partition(&graph, &ctx);
            prop_assert_eq!(
                a.assignment.edge_partitions(),
                b.assignment.edge_partitions()
            );
        }
    }
}
