//! The headline guarantee of the deterministic-parallel layer (`gp-par`):
//! every assignment, compute report, and vertex state is **byte-identical**
//! at any thread count. Parallelism may only change speed.
//!
//! Proptest drives random graphs through all fourteen partitioners (the
//! eleven `Strategy` variants plus BiCut, Chunking and VEBO) and all four
//! engines at thread counts {1, 2, 4, 7}, comparing the serialized
//! artifacts. The compared bytes cover the full observable `Assignment`
//! state — per-edge partitions, masters, replica lists in sorted order, and
//! all derived counts — so a divergence anywhere in the bitset/CSR replica
//! kernels (not just in edge placement) fails the suite.
//!
//! The windowed speculative ingress path (`--window >= 2`) deliberately
//! relaxes byte-identity *versus the sequential kernel* — conflict repair
//! re-draws tie-breaks — so its contract is gated separately by the
//! `stateful_parity` block below: bit-identical output across thread counts
//! at a fixed window, byte-identity to the sequential kernel at `window <=
//! 1`, and RF/balance within 5% (plus a discreteness allowance on the tiny
//! proptest graphs) of the sequential kernel otherwise.

use distgraph::apps::{PageRank, Wcc};
use distgraph::cluster::ClusterSpec;
use distgraph::core::{Edge, EdgeList, StreamingEdges, VertexId};
use distgraph::engine::{AsyncGas, EngineConfig, HybridGas, Pregel, PregelConfig, SyncGas};
use distgraph::partition::strategies::{BiCut, Chunking, Vebo};
use distgraph::partition::{
    write_assignment, PartitionContext, Partitioner, Strategy, WINDOW_AUTO,
};
use proptest::prelude::*;
// The partition::Strategy enum shadows proptest's Strategy trait; re-import
// the trait anonymously for method syntax.
use proptest::strategy::Strategy as _;

/// Arbitrary small graph: up to 60 vertices, up to 240 edges.
fn arb_graph() -> impl proptest::strategy::Strategy<Value = EdgeList> {
    (
        2u64..60,
        proptest::collection::vec((0u64..60, 0u64..60), 1..240),
    )
        .prop_map(|(n, pairs)| {
            let edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(a, b)| Edge::new(a % n, b % n))
                .collect();
            EdgeList::with_vertex_count(edges, n).expect("ids in range")
        })
}

/// All fourteen partitioners, each with a partition count it supports
/// (PDS needs p²+p+1).
fn all_partitioners() -> Vec<(String, Box<dyn Partitioner>, u32)> {
    let mut out: Vec<(String, Box<dyn Partitioner>, u32)> = Strategy::ALL
        .into_iter()
        .map(|s| {
            let parts = if s == Strategy::Pds { 7 } else { 9 };
            (s.label().to_string(), s.build(), parts)
        })
        .collect();
    out.push(("BiCut".into(), Box::new(BiCut::default()), 9));
    out.push(("Chunking".into(), Box::new(Chunking), 9));
    out.push(("VEBO".into(), Box::new(Vebo), 9));
    out
}

/// The strategies with a windowed speculative ingress path. Hybrid has no
/// sequential state (its passes are already parallel maps), so the window
/// is a no-op for it — it rides along to pin exactly that.
const STATEFUL: [Strategy; 4] = [
    Strategy::Hdrf,
    Strategy::Oblivious,
    Strategy::Hybrid,
    Strategy::HybridGinger,
];

/// The serialized assignment a partitioner produces at a given thread
/// count: the persisted form (edge partitions + masters) plus every other
/// observable — sorted replica lists, bitset/CSR agreement, edge counts,
/// replica/master counts, RF, mirrors, and ingress accounting.
fn assignment_bytes(
    graph: &dyn StreamingEdges,
    partitioner: &mut dyn Partitioner,
    parts: u32,
    seed: u64,
    threads: u32,
) -> Vec<u8> {
    windowed_bytes(graph, partitioner, parts, seed, threads, 0)
}

/// [`assignment_bytes`] with the speculative-ingress window set; `0` is the
/// default sequential-kernel path.
fn windowed_bytes(
    graph: &dyn StreamingEdges,
    partitioner: &mut dyn Partitioner,
    parts: u32,
    seed: u64,
    threads: u32,
    window: u32,
) -> Vec<u8> {
    windowed_bytes_with(graph, partitioner, parts, seed, threads, window, true)
}

/// [`windowed_bytes`] with the loader-block overlap pipeline toggled —
/// output must be byte-identical either way.
#[allow(clippy::too_many_arguments)]
fn windowed_bytes_with(
    graph: &dyn StreamingEdges,
    partitioner: &mut dyn Partitioner,
    parts: u32,
    seed: u64,
    threads: u32,
    window: u32,
    overlap: bool,
) -> Vec<u8> {
    let ctx = PartitionContext::new(parts)
        .with_seed(seed)
        .with_threads(threads)
        .with_window(window)
        .with_overlap(overlap);
    let outcome = partitioner.partition(graph, &ctx);
    let a = &outcome.assignment;
    let mut buf = Vec::new();
    write_assignment(a, &mut buf).expect("serialize");
    use std::io::Write as _;
    for v in 0..graph.num_vertices() {
        let v = VertexId(v);
        writeln!(buf, "r {v} {:?}", a.replicas(v)).unwrap();
        assert_eq!(
            a.replica_set(v).to_vec(),
            a.replicas(v),
            "bitset and CSR replica views disagree for {v}"
        );
    }
    writeln!(
        buf,
        "counts {:?} {:?} {:?} rf {} mirrors {} work {:?} state {}",
        a.edge_counts(),
        a.replica_counts(),
        a.master_counts(),
        a.replication_factor(),
        a.total_mirrors(),
        outcome.loader_work,
        outcome.state_bytes,
    )
    .unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_ingress_is_byte_identical_for_every_partitioner(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        for (name, mut partitioner, parts) in all_partitioners() {
            let seq = assignment_bytes(&graph, &mut *partitioner, parts, seed, 1);
            for threads in [2u32, 4, 7] {
                let par = assignment_bytes(&graph, &mut *partitioner, parts, seed, threads);
                prop_assert_eq!(
                    &seq, &par,
                    "{} diverges at {} threads", name, threads
                );
            }
        }
    }

    // Same guarantee from the storage layer: partitioning a compressed
    // `.gps` store by streaming it must match partitioning the identical
    // edge sequence held in memory, for every partitioner, at every thread
    // count. The store sorts edges by (src, dst), so the in-memory
    // reference is `store.to_edge_list()` — the same canonical order.
    #[test]
    fn streamed_ingress_matches_in_memory_for_every_partitioner(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let mut bytes = std::io::Cursor::new(Vec::new());
        distgraph::store::write_edge_list(&mut bytes, &graph).expect("build store");
        let store = distgraph::store::GraphStore::open_bytes(bytes.into_inner())
            .expect("reopen store");
        let in_memory = store.to_edge_list();
        for (name, mut partitioner, parts) in all_partitioners() {
            for threads in [1u32, 2, 4] {
                let mem = assignment_bytes(&in_memory, &mut *partitioner, parts, seed, threads);
                let streamed = assignment_bytes(&store, &mut *partitioner, parts, seed, threads);
                prop_assert_eq!(
                    &mem, &streamed,
                    "{} streamed ingress diverges from memory at {} threads", name, threads
                );
            }
        }
    }

    #[test]
    fn parallel_supersteps_are_byte_identical_for_every_engine(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let assignment = Strategy::Hdrf
            .build()
            .partition(&graph, &PartitionContext::new(9).with_seed(seed))
            .assignment;
        let spec = ClusterSpec::local_9();
        // (states, report) rendered to bytes for each engine × thread count.
        let run_all = |threads: u32| -> Vec<String> {
            let config = EngineConfig::new(spec.clone()).with_threads(threads);
            let prog = PageRank::fixed(4);
            let sync = SyncGas::new(config.clone()).run(&graph, &assignment, &prog);
            let hybrid = HybridGas::new(config.clone()).run(&graph, &assignment, &prog);
            let async_ = AsyncGas::new(config.clone()).run(&graph, &assignment, &prog);
            let pregel = Pregel::new(PregelConfig::new(config.clone()))
                .run(&graph, &assignment, &prog)
                .expect("fits");
            let wcc = SyncGas::new(config).run(&graph, &assignment, &Wcc);
            vec![
                format!("{:?}|{:?}", sync.0, sync.1),
                format!("{:?}|{:?}", hybrid.0, hybrid.1),
                format!("{:?}|{:?}", async_.0, async_.1),
                format!("{:?}|{:?}", pregel.0, pregel.1),
                format!("{:?}|{:?}", wcc.0, wcc.1),
            ]
        };
        let seq = run_all(1);
        for threads in [2u32, 4, 7] {
            let par = run_all(threads);
            for (engine, (s, p)) in ["sync", "hybrid", "async", "pregel", "sync-wcc"]
                .iter()
                .zip(seq.iter().zip(par.iter()))
            {
                prop_assert_eq!(s, p, "{} diverges at {} threads", engine, threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The quality-parity contract of windowed speculative ingress, on
    // random graphs × {HDRF, Oblivious, Hybrid, H-Ginger} × threads
    // {1, 2, 4, 7}:
    //
    // 1. at a fixed window the output is bit-identical across thread
    //    counts (speculation is deterministic; threads only change who
    //    scores a chunk);
    // 2. `window <= 1` dispatches to the sequential kernel, byte-identical
    //    to `window == 0` by construction;
    // 3. at `window >= 2` replication factor and edge imbalance stay
    //    within 5% of the sequential kernel — plus a discreteness
    //    allowance, because on graphs this small (≤60 vertices, ≤240
    //    edges, 9 partitions) a single legitimately re-drawn tie-break
    //    moves RF by 2/|V| and imbalance by p/|E|, quanta far coarser
    //    than 5%. The strict relative-5% gate runs on a realistic-size
    //    graph in `windowed_hdrf_holds_strict_parity_at_scale` below.
    #[test]
    fn stateful_parity(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let n = graph.num_vertices() as f64;
        let m = graph.num_edges() as f64;
        for strategy in STATEFUL {
            let label = strategy.label();
            for window in [4u32, 16, WINDOW_AUTO] {
                let fixed = windowed_bytes(&graph, &mut *strategy.build(), 9, seed, 1, window);
                for threads in [2u32, 4, 7] {
                    let par = windowed_bytes(&graph, &mut *strategy.build(), 9, seed, threads, window);
                    prop_assert_eq!(
                        &fixed, &par,
                        "{} window={} diverges at {} threads", label, window, threads
                    );
                }
                // Overlapped loader blocks are a pure scheduling change:
                // disabling the block pipeline must not move a byte.
                let no_overlap =
                    windowed_bytes_with(&graph, &mut *strategy.build(), 9, seed, 4, window, false);
                let overlap =
                    windowed_bytes_with(&graph, &mut *strategy.build(), 9, seed, 4, window, true);
                prop_assert_eq!(
                    &no_overlap, &overlap,
                    "{} window={} diverges when block overlap is toggled", label, window
                );
            }
            let seq = windowed_bytes(&graph, &mut *strategy.build(), 9, seed, 1, 0);
            let w1 = windowed_bytes(&graph, &mut *strategy.build(), 9, seed, 1, 1);
            prop_assert_eq!(
                &seq, &w1,
                "{} window=1 must run the sequential kernel byte-for-byte", label
            );
            let ctx_seq = PartitionContext::new(9).with_seed(seed);
            let ctx_win = PartitionContext::new(9).with_seed(seed).with_window(16);
            let a = strategy.build().partition(&graph, &ctx_seq).assignment;
            let b = strategy.build().partition(&graph, &ctx_win).assignment;
            let (rf_s, rf_w) = (a.replication_factor(), b.replication_factor());
            let (bal_s, bal_w) = (a.balance().imbalance, b.balance().imbalance);
            // Additive discreteness terms: a re-drawn tie can move RF by
            // 2/|V| per affected edge, and within one window up to
            // `window` edges may commit against a stale balance signal,
            // shifting the heaviest partition by `window` edges, i.e.
            // imbalance by window*p/m. Both terms vanish at realistic
            // scale (window << m/p) — the strict relative-5% bound is
            // enforced in `windowed_hdrf_holds_strict_parity_at_scale`.
            let rf_slack = 0.05 * rf_s + 2.0 * 9.0 / n;
            let bal_slack = 0.05 * bal_s + 16.0 * 9.0 / m;
            // One-sided: windowed must not be *worse* than sequential by
            // more than the slack; strictly better is never a failure.
            prop_assert!(
                rf_w - rf_s <= rf_slack,
                "{}: windowed RF {:.4} vs sequential {:.4} (slack {:.4})",
                label, rf_w, rf_s, rf_slack
            );
            prop_assert!(
                bal_w - bal_s <= bal_slack,
                "{}: windowed imbalance {:.4} vs sequential {:.4} (slack {:.4})",
                label, bal_w, bal_s, bal_slack
            );
        }
    }

    // VEBO is an *ordering* strategy: its placement depends only on the
    // degree sequence, so permuting vertex ids (edge multiset preserved
    // under the relabeling) must permute the assignment with it — the
    // per-partition vertex/edge-count vectors are exactly invariant.
    #[test]
    fn vebo_is_ordering_invariant(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let n = graph.num_vertices();
        // Deterministic pseudo-random permutation of the vertex ids.
        let mut perm: Vec<u64> = (0..n).collect();
        let mut rng = distgraph::core::Splitmix64::new(seed ^ 0xbe0);
        for i in (1..perm.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let relabeled = EdgeList::with_vertex_count(
            graph
                .edges()
                .iter()
                .map(|e| Edge::new(perm[e.src.index()], perm[e.dst.index()]))
                .collect(),
            n,
        )
        .expect("ids in range");
        let ctx = PartitionContext::new(9).with_seed(seed);
        let base = Vebo.partition(&graph, &ctx).assignment;
        let relab = Vebo.partition(&relabeled, &ctx).assignment;
        // Identical degree sequences → identical LPT evolution → identical
        // partition-level load vectors (sorted: partition *indices* may
        // swap between degree-tied vertices).
        let sorted = |mut v: Vec<u64>| { v.sort_unstable(); v };
        prop_assert_eq!(
            sorted(base.edge_counts().to_vec()),
            sorted(relab.edge_counts().to_vec()),
            "edge loads changed under vertex relabeling"
        );
        // Vertex-balance invariance holds for vertices *with* out-edges:
        // their master is always the LPT owner (the owner holds their
        // out-edges, hence a replica). Zero-out-degree vertices fall back
        // to `replicas[0]`, which depends on where in-edges landed — not a
        // degree-sequence quantity — so they are excluded here.
        let owner_counts = |g: &EdgeList, a: &distgraph::partition::Assignment| {
            let mut out_deg = vec![0u64; n as usize];
            for e in g.edges() {
                out_deg[e.src.index()] += 1;
            }
            let mut counts = vec![0u64; 9];
            for v in 0..n {
                if out_deg[v as usize] > 0 {
                    counts[a.master_of(VertexId(v)).index()] += 1;
                }
            }
            counts
        };
        prop_assert_eq!(
            sorted(owner_counts(&graph, &base)),
            sorted(owner_counts(&relabeled, &relab)),
            "owner vertex counts changed under vertex relabeling"
        );
        // RF is *not* an exact invariant: degree-tied vertices swap
        // partitions under relabeling and tied vertices need not be
        // structurally interchangeable — so only the degree-derived load
        // vectors above are asserted exactly.
    }
}

/// The strict relative-5% half of the windowed parity contract, where the
/// discreteness allowance of the proptest block vanishes: a realistic
/// power-law graph at the bench's shape (degree ~10, 9 partitions) and the
/// bench's production window (4096).
#[test]
fn windowed_hdrf_holds_strict_parity_at_scale() {
    let graph = distgraph::gen::barabasi_albert(20_000, 8, 3);
    for strategy in STATEFUL {
        let label = strategy.label();
        let seq = strategy
            .build()
            .partition(&graph, &PartitionContext::new(9).with_seed(3))
            .assignment;
        let win = strategy
            .build()
            .partition(
                &graph,
                &PartitionContext::new(9).with_seed(3).with_window(4096),
            )
            .assignment;
        // One-sided gaps: the contract is "no more than 5% *worse* than
        // the sequential kernel" — frozen in-window degrees sometimes make
        // the windowed kernel strictly better, which must not fail the gate.
        let rf_gap = win.replication_factor() / seq.replication_factor() - 1.0;
        let bal_gap = win.balance().imbalance / seq.balance().imbalance - 1.0;
        assert!(
            rf_gap <= 0.05,
            "{label}: windowed RF {:.4} vs sequential {:.4} ({:.2}% off)",
            win.replication_factor(),
            seq.replication_factor(),
            rf_gap * 100.0
        );
        assert!(
            bal_gap <= 0.05,
            "{label}: windowed imbalance {:.4} vs sequential {:.4} ({:.2}% off)",
            win.balance().imbalance,
            seq.balance().imbalance,
            bal_gap * 100.0
        );
    }
}

/// `--window auto` at realistic scale: the adaptive controller's window
/// schedule is a pure function of the committed edge stream, so the output
/// must stay bit-identical across thread counts {1, 2, 4, 7} — with block
/// overlap on and off — even as windows grow and shrink. Multiple loader
/// blocks (9) exercise the per-block controller reset and the block
/// pipeline together.
#[test]
fn auto_window_is_thread_identical_at_scale() {
    let graph = distgraph::gen::barabasi_albert(20_000, 8, 3);
    for strategy in STATEFUL {
        let label = strategy.label();
        let base = windowed_bytes(&graph, &mut *strategy.build(), 9, 3, 1, WINDOW_AUTO);
        for threads in [2u32, 4, 7] {
            let par = windowed_bytes(&graph, &mut *strategy.build(), 9, 3, threads, WINDOW_AUTO);
            assert_eq!(
                base, par,
                "{label} --window auto diverges at {threads} threads"
            );
        }
        let no_overlap =
            windowed_bytes_with(&graph, &mut *strategy.build(), 9, 3, 4, WINDOW_AUTO, false);
        assert_eq!(
            base, no_overlap,
            "{label} --window auto diverges when block overlap is disabled"
        );
    }
}

/// A conflict storm must make the adaptive controller shrink its window: a
/// pure star graph routes every edge through the hub, so each speculated
/// edge after a window's first finds the hub stamped and repairs — repair
/// rate ~1, far over the shrink threshold. The shrink count is observable
/// through the `par.spec_shrinks` telemetry counter, the repair rate
/// through its gauge, and the placements stay thread-identical throughout.
#[test]
fn conflict_storm_forces_window_shrink() {
    use distgraph::telemetry::TelemetrySink;
    let edges: Vec<Edge> = (1..=6_000u64).map(|i| Edge::new(0u64, i)).collect();
    let graph = EdgeList::with_vertex_count(edges, 6_001).expect("ids in range");
    let sink = TelemetrySink::recording();
    let ctx = PartitionContext::new(9)
        .with_seed(3)
        .with_loaders(1)
        .with_window(WINDOW_AUTO)
        .with_telemetry(sink.clone());
    let storm = Strategy::Hdrf.build().partition(&graph, &ctx).assignment;
    assert!(
        sink.counter("par.spec_shrinks") >= 1,
        "a ~100% repair-rate stream must shrink the window at least once \
         (shrinks = {})",
        sink.counter("par.spec_shrinks")
    );
    let rate = sink
        .metrics()
        .gauge("par.spec_repair_rate")
        .expect("repair-rate gauge");
    assert!(
        rate > 0.4,
        "star-graph repair rate {rate} should be a storm"
    );
    // Determinism holds under the storm too.
    let again = Strategy::Hdrf
        .build()
        .partition(&graph, &ctx.clone().with_telemetry(TelemetrySink::Disabled))
        .assignment;
    assert_eq!(storm.edge_partitions(), again.edge_partitions());
}

/// A realistic-size fixed case on top of the proptest sweep: a heavy-tailed
/// LiveJournal analogue through ingress + every engine, including
/// `--threads 0` (all cores), whose effective count depends on the host —
/// exactly what the byte-identity guarantee must absorb.
#[test]
fn realistic_graph_is_byte_identical_at_every_thread_count() {
    let graph = distgraph::gen::Dataset::LiveJournal.generate(0.05, 7);
    for (name, mut partitioner, parts) in all_partitioners() {
        let seq = assignment_bytes(&graph, &mut *partitioner, parts, 5, 1);
        for threads in [2u32, 4, 0] {
            let par = assignment_bytes(&graph, &mut *partitioner, parts, 5, threads);
            assert_eq!(seq, par, "{name} diverges at {threads} threads");
        }
    }
    let assignment = Strategy::Hdrf
        .build()
        .partition(&graph, &PartitionContext::new(9).with_seed(5))
        .assignment;
    let spec = ClusterSpec::local_9();
    let run = |threads: u32| -> String {
        let config = EngineConfig::new(spec.clone()).with_threads(threads);
        let prog = PageRank::fixed(6);
        let sync = SyncGas::new(config.clone()).run(&graph, &assignment, &prog);
        let hybrid = HybridGas::new(config.clone()).run(&graph, &assignment, &prog);
        let async_ = AsyncGas::new(config.clone()).run(&graph, &assignment, &prog);
        let pregel = Pregel::new(PregelConfig::new(config))
            .run(&graph, &assignment, &prog)
            .expect("fits");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            sync.0, sync.1, hybrid.0, hybrid.1, async_.0, async_.1, pregel.0, pregel.1
        )
    };
    let seq = run(1);
    for threads in [2u32, 4, 0] {
        assert_eq!(seq, run(threads), "engines diverge at {threads} threads");
    }
}

/// Speed half of the contract: more threads must actually help on hosts that
/// have the cores — on the stateless path (Random) *and* the stateful
/// greedy path (HDRF). On single-core runners a strict win is impossible,
/// so the assertion degrades to a bounded-overhead check there — the real
/// regression gate for that case is `ingress_throughput --check` in CI.
#[test]
fn parallel_ingress_wins_on_multicore_hosts() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let graph = distgraph::gen::barabasi_albert(20_000, 10, 1);
    for strategy in [Strategy::Random, Strategy::Hdrf] {
        let time = |threads: u32| -> f64 {
            let ctx = PartitionContext::new(9).with_seed(1).with_threads(threads);
            strategy.build().partition(&graph, &ctx); // warm-up
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                let out = strategy.build().partition(&graph, &ctx);
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(out.assignment.num_edges(), graph.num_edges());
            }
            best
        };
        let label = strategy.label();
        let one = time(1);
        let four = time(4);
        if cores >= 4 {
            assert!(
                four <= one,
                "[{label}] 4-thread ingress ({four:.4}s) slower than 1-thread ({one:.4}s) \
                 on {cores} cores"
            );
        } else {
            // Without cores to exploit, 4 workers time-slice one core and
            // debug builds amplify the per-chunk overhead, so only a
            // pathological blow-up (e.g. accidentally duplicated work) fails
            // here. The calibrated single-core bound (2 threads within 10%
            // of 1, release mode) is `ingress_throughput --check` in the
            // par-smoke CI job.
            assert!(
                four < one * 3.0,
                "[{label}] 4-thread ingress ({four:.4}s) pathologically slower than \
                 1-thread ({one:.4}s)"
            );
        }
    }
}
