//! The headline guarantee of the deterministic-parallel layer (`gp-par`):
//! every assignment, compute report, and vertex state is **byte-identical**
//! at any thread count. Parallelism may only change speed.
//!
//! Proptest drives random graphs through all thirteen partitioners (the
//! eleven `Strategy` variants plus BiCut and Chunking) and all four engines
//! at thread counts {1, 2, 4, 7}, comparing the serialized artifacts. The
//! compared bytes cover the full observable `Assignment` state — per-edge
//! partitions, masters, replica lists in sorted order, and all derived
//! counts — so a divergence anywhere in the bitset/CSR replica kernels
//! (not just in edge placement) fails the suite.

use distgraph::apps::{PageRank, Wcc};
use distgraph::cluster::ClusterSpec;
use distgraph::core::{Edge, EdgeList, StreamingEdges, VertexId};
use distgraph::engine::{AsyncGas, EngineConfig, HybridGas, Pregel, PregelConfig, SyncGas};
use distgraph::partition::strategies::{BiCut, Chunking};
use distgraph::partition::{write_assignment, PartitionContext, Partitioner, Strategy};
use proptest::prelude::*;
// The partition::Strategy enum shadows proptest's Strategy trait; re-import
// the trait anonymously for method syntax.
use proptest::strategy::Strategy as _;

/// Arbitrary small graph: up to 60 vertices, up to 240 edges.
fn arb_graph() -> impl proptest::strategy::Strategy<Value = EdgeList> {
    (
        2u64..60,
        proptest::collection::vec((0u64..60, 0u64..60), 1..240),
    )
        .prop_map(|(n, pairs)| {
            let edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(a, b)| Edge::new(a % n, b % n))
                .collect();
            EdgeList::with_vertex_count(edges, n).expect("ids in range")
        })
}

/// All thirteen partitioners, each with a partition count it supports
/// (PDS needs p²+p+1).
fn all_partitioners() -> Vec<(String, Box<dyn Partitioner>, u32)> {
    let mut out: Vec<(String, Box<dyn Partitioner>, u32)> = Strategy::ALL
        .into_iter()
        .map(|s| {
            let parts = if s == Strategy::Pds { 7 } else { 9 };
            (s.label().to_string(), s.build(), parts)
        })
        .collect();
    out.push(("BiCut".into(), Box::new(BiCut::default()), 9));
    out.push(("Chunking".into(), Box::new(Chunking), 9));
    out
}

/// The serialized assignment a partitioner produces at a given thread
/// count: the persisted form (edge partitions + masters) plus every other
/// observable — sorted replica lists, bitset/CSR agreement, edge counts,
/// replica/master counts, RF, mirrors, and ingress accounting.
fn assignment_bytes(
    graph: &dyn StreamingEdges,
    partitioner: &mut dyn Partitioner,
    parts: u32,
    seed: u64,
    threads: u32,
) -> Vec<u8> {
    let ctx = PartitionContext::new(parts)
        .with_seed(seed)
        .with_threads(threads);
    let outcome = partitioner.partition(graph, &ctx);
    let a = &outcome.assignment;
    let mut buf = Vec::new();
    write_assignment(a, &mut buf).expect("serialize");
    use std::io::Write as _;
    for v in 0..graph.num_vertices() {
        let v = VertexId(v);
        writeln!(buf, "r {v} {:?}", a.replicas(v)).unwrap();
        assert_eq!(
            a.replica_set(v).to_vec(),
            a.replicas(v),
            "bitset and CSR replica views disagree for {v}"
        );
    }
    writeln!(
        buf,
        "counts {:?} {:?} {:?} rf {} mirrors {} work {:?} state {}",
        a.edge_counts(),
        a.replica_counts(),
        a.master_counts(),
        a.replication_factor(),
        a.total_mirrors(),
        outcome.loader_work,
        outcome.state_bytes,
    )
    .unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_ingress_is_byte_identical_for_every_partitioner(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        for (name, mut partitioner, parts) in all_partitioners() {
            let seq = assignment_bytes(&graph, &mut *partitioner, parts, seed, 1);
            for threads in [2u32, 4, 7] {
                let par = assignment_bytes(&graph, &mut *partitioner, parts, seed, threads);
                prop_assert_eq!(
                    &seq, &par,
                    "{} diverges at {} threads", name, threads
                );
            }
        }
    }

    // Same guarantee from the storage layer: partitioning a compressed
    // `.gps` store by streaming it must match partitioning the identical
    // edge sequence held in memory, for every partitioner, at every thread
    // count. The store sorts edges by (src, dst), so the in-memory
    // reference is `store.to_edge_list()` — the same canonical order.
    #[test]
    fn streamed_ingress_matches_in_memory_for_every_partitioner(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let mut bytes = std::io::Cursor::new(Vec::new());
        distgraph::store::write_edge_list(&mut bytes, &graph).expect("build store");
        let store = distgraph::store::GraphStore::open_bytes(bytes.into_inner())
            .expect("reopen store");
        let in_memory = store.to_edge_list();
        for (name, mut partitioner, parts) in all_partitioners() {
            for threads in [1u32, 2, 4] {
                let mem = assignment_bytes(&in_memory, &mut *partitioner, parts, seed, threads);
                let streamed = assignment_bytes(&store, &mut *partitioner, parts, seed, threads);
                prop_assert_eq!(
                    &mem, &streamed,
                    "{} streamed ingress diverges from memory at {} threads", name, threads
                );
            }
        }
    }

    #[test]
    fn parallel_supersteps_are_byte_identical_for_every_engine(
        graph in arb_graph(),
        seed in 0u64..1000,
    ) {
        let assignment = Strategy::Hdrf
            .build()
            .partition(&graph, &PartitionContext::new(9).with_seed(seed))
            .assignment;
        let spec = ClusterSpec::local_9();
        // (states, report) rendered to bytes for each engine × thread count.
        let run_all = |threads: u32| -> Vec<String> {
            let config = EngineConfig::new(spec.clone()).with_threads(threads);
            let prog = PageRank::fixed(4);
            let sync = SyncGas::new(config.clone()).run(&graph, &assignment, &prog);
            let hybrid = HybridGas::new(config.clone()).run(&graph, &assignment, &prog);
            let async_ = AsyncGas::new(config.clone()).run(&graph, &assignment, &prog);
            let pregel = Pregel::new(PregelConfig::new(config.clone()))
                .run(&graph, &assignment, &prog)
                .expect("fits");
            let wcc = SyncGas::new(config).run(&graph, &assignment, &Wcc);
            vec![
                format!("{:?}|{:?}", sync.0, sync.1),
                format!("{:?}|{:?}", hybrid.0, hybrid.1),
                format!("{:?}|{:?}", async_.0, async_.1),
                format!("{:?}|{:?}", pregel.0, pregel.1),
                format!("{:?}|{:?}", wcc.0, wcc.1),
            ]
        };
        let seq = run_all(1);
        for threads in [2u32, 4, 7] {
            let par = run_all(threads);
            for (engine, (s, p)) in ["sync", "hybrid", "async", "pregel", "sync-wcc"]
                .iter()
                .zip(seq.iter().zip(par.iter()))
            {
                prop_assert_eq!(s, p, "{} diverges at {} threads", engine, threads);
            }
        }
    }
}

/// A realistic-size fixed case on top of the proptest sweep: a heavy-tailed
/// LiveJournal analogue through ingress + every engine, including
/// `--threads 0` (all cores), whose effective count depends on the host —
/// exactly what the byte-identity guarantee must absorb.
#[test]
fn realistic_graph_is_byte_identical_at_every_thread_count() {
    let graph = distgraph::gen::Dataset::LiveJournal.generate(0.05, 7);
    for (name, mut partitioner, parts) in all_partitioners() {
        let seq = assignment_bytes(&graph, &mut *partitioner, parts, 5, 1);
        for threads in [2u32, 4, 0] {
            let par = assignment_bytes(&graph, &mut *partitioner, parts, 5, threads);
            assert_eq!(seq, par, "{name} diverges at {threads} threads");
        }
    }
    let assignment = Strategy::Hdrf
        .build()
        .partition(&graph, &PartitionContext::new(9).with_seed(5))
        .assignment;
    let spec = ClusterSpec::local_9();
    let run = |threads: u32| -> String {
        let config = EngineConfig::new(spec.clone()).with_threads(threads);
        let prog = PageRank::fixed(6);
        let sync = SyncGas::new(config.clone()).run(&graph, &assignment, &prog);
        let hybrid = HybridGas::new(config.clone()).run(&graph, &assignment, &prog);
        let async_ = AsyncGas::new(config.clone()).run(&graph, &assignment, &prog);
        let pregel = Pregel::new(PregelConfig::new(config))
            .run(&graph, &assignment, &prog)
            .expect("fits");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            sync.0, sync.1, hybrid.0, hybrid.1, async_.0, async_.1, pregel.0, pregel.1
        )
    };
    let seq = run(1);
    for threads in [2u32, 4, 0] {
        assert_eq!(seq, run(threads), "engines diverge at {threads} threads");
    }
}

/// Speed half of the contract: more threads must actually help on hosts that
/// have the cores — on the stateless path (Random) *and* the stateful
/// greedy path (HDRF). On single-core runners a strict win is impossible,
/// so the assertion degrades to a bounded-overhead check there — the real
/// regression gate for that case is `ingress_throughput --check` in CI.
#[test]
fn parallel_ingress_wins_on_multicore_hosts() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let graph = distgraph::gen::barabasi_albert(20_000, 10, 1);
    for strategy in [Strategy::Random, Strategy::Hdrf] {
        let time = |threads: u32| -> f64 {
            let ctx = PartitionContext::new(9).with_seed(1).with_threads(threads);
            strategy.build().partition(&graph, &ctx); // warm-up
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                let out = strategy.build().partition(&graph, &ctx);
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(out.assignment.num_edges(), graph.num_edges());
            }
            best
        };
        let label = strategy.label();
        let one = time(1);
        let four = time(4);
        if cores >= 4 {
            assert!(
                four <= one,
                "[{label}] 4-thread ingress ({four:.4}s) slower than 1-thread ({one:.4}s) \
                 on {cores} cores"
            );
        } else {
            // Without cores to exploit, 4 workers time-slice one core and
            // debug builds amplify the per-chunk overhead, so only a
            // pathological blow-up (e.g. accidentally duplicated work) fails
            // here. The calibrated single-core bound (2 threads within 10%
            // of 1, release mode) is `ingress_throughput --check` in the
            // par-smoke CI job.
            assert!(
                four < one * 3.0,
                "[{label}] 4-thread ingress ({four:.4}s) pathologically slower than \
                 1-thread ({one:.4}s)"
            );
        }
    }
}
