//! Telemetry must be an observer, never a participant: instrumented runs
//! with a `Disabled` sink are bit-identical to uninstrumented ones, traces
//! are deterministic per seed, and the Chrome exporter's byte format is
//! pinned by a golden file.

use distgraph::apps::PageRank;
use distgraph::cluster::ClusterSpec;
use distgraph::engine::{
    AsyncGas, CommsConfig, EngineConfig, HybridGas, Pregel, PregelConfig, SyncGas,
};
use distgraph::fault::{CheckpointPolicy, FaultEvent, FaultKind, FaultPlan};
use distgraph::gen::Dataset;
use distgraph::partition::{Assignment, PartitionContext, Strategy, WINDOW_AUTO};
use distgraph::telemetry::TelemetrySink;
use gp_bench::{App, EngineKind, Pipeline};

fn graph_and_assignment() -> (distgraph::core::EdgeList, Assignment) {
    let g = Dataset::LiveJournal.generate(0.05, 7);
    let a = Strategy::Hdrf
        .build()
        .partition(&g, &PartitionContext::new(9).with_seed(5))
        .assignment;
    (g, a)
}

/// A config that exercises the fault path too, so the checkpoint/recovery
/// telemetry in `fault_hook` is covered by the identity check.
fn faulty_config(sink: TelemetrySink) -> EngineConfig {
    EngineConfig::new(ClusterSpec::local_9())
        .with_fault_plan(FaultPlan::crash_at(2, 1))
        .with_checkpoint(CheckpointPolicy::every(2))
        .with_telemetry(sink)
}

#[test]
fn disabled_sink_is_bit_identical_across_all_engines() {
    let (g, a) = graph_and_assignment();
    let prog = PageRank::fixed(6);

    let (s_off, r_off) = SyncGas::new(faulty_config(TelemetrySink::Disabled)).run(&g, &a, &prog);
    let (s_on, r_on) = SyncGas::new(faulty_config(TelemetrySink::recording())).run(&g, &a, &prog);
    assert_eq!(s_off, s_on, "sync states diverge");
    assert_eq!(format!("{r_off:?}"), format!("{r_on:?}"), "sync report");

    let (s_off, r_off) = HybridGas::new(faulty_config(TelemetrySink::Disabled)).run(&g, &a, &prog);
    let (s_on, r_on) = HybridGas::new(faulty_config(TelemetrySink::recording())).run(&g, &a, &prog);
    assert_eq!(s_off, s_on, "hybrid states diverge");
    assert_eq!(format!("{r_off:?}"), format!("{r_on:?}"), "hybrid report");

    let (s_off, r_off) = AsyncGas::new(faulty_config(TelemetrySink::Disabled)).run(&g, &a, &prog);
    let (s_on, r_on) = AsyncGas::new(faulty_config(TelemetrySink::recording())).run(&g, &a, &prog);
    assert_eq!(s_off, s_on, "async states diverge");
    assert_eq!(format!("{r_off:?}"), format!("{r_on:?}"), "async report");

    let (s_off, r_off) = Pregel::new(PregelConfig::new(faulty_config(TelemetrySink::Disabled)))
        .run(&g, &a, &prog)
        .expect("fits");
    let (s_on, r_on) = Pregel::new(PregelConfig::new(faulty_config(TelemetrySink::recording())))
        .run(&g, &a, &prog)
        .expect("fits");
    assert_eq!(s_off, s_on, "pregel states diverge");
    assert_eq!(format!("{r_off:?}"), format!("{r_on:?}"), "pregel report");
}

/// A config exercising the comms path: flaky links everywhere plus one
/// straggler, with reliable delivery and speculation both on.
fn flaky_config(sink: TelemetrySink) -> EngineConfig {
    let mut plan = FaultPlan::uniform_flaky(0.1, 9, 100);
    plan.push(FaultEvent {
        superstep: 2,
        machine: 4,
        kind: FaultKind::Straggler {
            factor: 20.0,
            duration_steps: 2,
        },
    });
    EngineConfig::new(ClusterSpec::local_9())
        .with_fault_plan(plan)
        .with_comms(CommsConfig::reliable().with_speculation(true))
        .with_telemetry(sink)
}

#[test]
fn flaky_runs_are_deterministic_across_all_engines() {
    // Same seed + same flaky plan: reports AND trace bytes must be identical
    // across two runs, for every engine.
    let (g, a) = graph_and_assignment();
    let prog = PageRank::fixed(6);
    let twice = |run: &dyn Fn(EngineConfig) -> String| {
        let sink1 = TelemetrySink::recording();
        let sink2 = TelemetrySink::recording();
        let r1 = run(flaky_config(sink1.clone()));
        let r2 = run(flaky_config(sink2.clone()));
        assert_eq!(r1, r2, "report not deterministic");
        let json = sink1.chrome_trace_json();
        assert_eq!(json, sink2.chrome_trace_json(), "trace not deterministic");
        json
    };
    let sync_json = twice(&|c| format!("{:?}", SyncGas::new(c).run(&g, &a, &prog).1));
    twice(&|c| format!("{:?}", HybridGas::new(c).run(&g, &a, &prog).1));
    twice(&|c| format!("{:?}", AsyncGas::new(c).run(&g, &a, &prog).1));
    twice(&|c| {
        format!(
            "{:?}",
            Pregel::new(PregelConfig::new(c))
                .run(&g, &a, &prog)
                .expect("fits")
                .1
        )
    });
    // The flaky windows surface in the trace as net-category retry spans.
    assert!(sync_json.contains("\"cat\":\"net\""), "missing net spans");
}

#[test]
fn default_config_and_disabled_sink_agree() {
    // `Disabled` is the default: an engine built without touching telemetry
    // at all must match one built with an explicit `Disabled` sink.
    let (g, a) = graph_and_assignment();
    let prog = PageRank::fixed(4);
    let plain = EngineConfig::new(ClusterSpec::local_9());
    let explicit =
        EngineConfig::new(ClusterSpec::local_9()).with_telemetry(TelemetrySink::Disabled);
    let (s1, r1) = SyncGas::new(plain).run(&g, &a, &prog);
    let (s2, r2) = SyncGas::new(explicit).run(&g, &a, &prog);
    assert_eq!(s1, s2);
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
}

fn traced_job(sink: &TelemetrySink) -> gp_bench::JobResult {
    traced_job_threads(sink, 1)
}

fn traced_job_threads(sink: &TelemetrySink, threads: u32) -> gp_bench::JobResult {
    let mut pipeline = Pipeline::new(0.05, 11)
        .with_telemetry(sink.clone())
        .with_threads(threads);
    pipeline.run_with_faults(
        Dataset::LiveJournal,
        Strategy::Hdrf,
        &ClusterSpec::local_9(),
        EngineKind::PowerGraph,
        App::PageRankFixed(5),
        FaultPlan::crash_at(3, 2),
        CheckpointPolicy::every(2),
    )
}

#[test]
fn same_seed_yields_byte_identical_artifacts() {
    let sink1 = TelemetrySink::recording();
    let sink2 = TelemetrySink::recording();
    traced_job(&sink1);
    traced_job(&sink2);
    let json = sink1.chrome_trace_json();
    assert!(!json.is_empty());
    assert_eq!(
        json,
        sink2.chrome_trace_json(),
        "trace JSON not deterministic"
    );
    assert_eq!(
        sink1.metrics_csv(),
        sink2.metrics_csv(),
        "metrics CSV not deterministic"
    );
    assert_eq!(
        sink1.summary(),
        sink2.summary(),
        "summary not deterministic"
    );
}

#[test]
fn thread_count_changes_artifacts_only_by_par_entries() {
    // The deterministic-parallelism contract for telemetry: a 4-thread run
    // produces the same result and the same artifacts as a 1-thread run,
    // except for the `par` worker lanes in the trace and the `par.` rows in
    // the metrics CSV — and those extra entries must actually be there.
    use distgraph::telemetry::{csv_without_prefix, trace_without_category};
    let sink1 = TelemetrySink::recording();
    let sink4 = TelemetrySink::recording();
    let r1 = traced_job_threads(&sink1, 1);
    let r4 = traced_job_threads(&sink4, 4);
    assert_eq!(
        format!("{r1:?}"),
        format!("{r4:?}"),
        "job result depends on thread count"
    );

    let json1 = sink1.chrome_trace_json();
    let json4 = sink4.chrome_trace_json();
    assert!(
        json4.contains("\"cat\":\"par\""),
        "missing par worker spans"
    );
    assert!(json4.contains("par.ingress.worker0"));
    assert_ne!(json1, json4, "4-thread trace should gain par spans");
    assert_eq!(
        json1,
        trace_without_category(&json4, "par"),
        "traces differ beyond the par category"
    );
    // A sequential trace has no par lanes at all, so stripping is a no-op.
    assert_eq!(json1, trace_without_category(&json1, "par"));

    let csv1 = sink1.metrics_csv();
    let csv4 = sink4.metrics_csv();
    assert!(csv4.contains("par.threads"), "{csv4}");
    assert!(csv4.contains("par.ingress_chunks"), "{csv4}");
    assert!(csv4.contains("par.accounting_shards"), "{csv4}");
    assert!(csv4.contains("par.sharded_supersteps"), "{csv4}");
    assert_eq!(
        csv1,
        csv_without_prefix(&csv4, "par."),
        "metrics differ beyond the par. prefix"
    );
    assert_eq!(csv1, csv_without_prefix(&csv1, "par."));
}

#[test]
fn trace_covers_ingress_supersteps_phases_and_faults() {
    let sink = TelemetrySink::recording();
    let result = traced_job(&sink);
    let spans = sink.spans();

    let ingress: Vec<_> = spans
        .iter()
        .filter(|s| s.cat == "ingress" && s.track == distgraph::telemetry::span::Track::Cluster)
        .collect();
    assert_eq!(ingress.len(), 1, "exactly one cluster ingress span");
    assert_eq!(ingress[0].name, "ingress.HDRF");
    assert!(ingress[0].start_s.abs() < 1e-12);
    assert!((ingress[0].dur_s - result.ingress_seconds).abs() < 1e-9);

    // One superstep span per executed superstep (including replays), each
    // starting at or after the end of ingress.
    let supersteps: Vec<_> = spans.iter().filter(|s| s.cat == "superstep").collect();
    assert_eq!(supersteps.len() as u32, result.supersteps);
    for s in &supersteps {
        assert!(s.start_s >= result.ingress_seconds - 1e-9);
    }

    // Phase decomposition nests under supersteps: the nesting depths the
    // summary reports must include depth >= 1 entries.
    assert!(spans
        .iter()
        .any(|s| s.cat == "phase" && s.name == "compute"));
    assert!(spans
        .iter()
        .any(|s| s.cat == "phase" && s.name == "network"));
    assert!(sink.nesting_depths().iter().any(|&d| d >= 1));

    // Per-machine tracks carry load and work spans.
    assert!(spans.iter().any(|s| s.cat == "ingress"
        && s.name == "load"
        && s.track != distgraph::telemetry::span::Track::Cluster));
    assert!(spans.iter().any(|s| s.cat == "machine" && s.name == "work"));

    // The injected crash and checkpoint policy show up as fault spans.
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "fault" && s.name == "checkpoint.0"),
        "missing checkpoint span"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "fault" && s.name == "recovery.m2"),
        "missing recovery span"
    );
    assert!(sink.counter("fault.crashes") == 1);
    assert!(sink.counter("fault.checkpoints") >= 1);
    assert_eq!(
        sink.counter("engine.supersteps"),
        u64::from(result.supersteps)
    );
}

fn traced_elastic_job(
    sink: &TelemetrySink,
    elastic: distgraph::elastic::ElasticConfig,
) -> gp_bench::JobResult {
    let mut pipeline = Pipeline::new(0.05, 11)
        .with_telemetry(sink.clone())
        .with_threads(1);
    pipeline.run_with_elastic(
        Dataset::LiveJournal,
        Strategy::Hdrf,
        &ClusterSpec::local_9(),
        EngineKind::PowerGraph,
        App::PageRankFixed(5),
        FaultPlan::crash_at(3, 2),
        CheckpointPolicy::every(2),
        CommsConfig::disabled(),
        elastic,
    )
}

#[test]
fn empty_elastic_plan_keeps_artifacts_bit_identical() {
    // The elastic contract mirrors the telemetry one: an *enabled* elastic
    // config whose plan is empty must leave every threads-1 artifact
    // byte-for-byte unchanged against a run that never mentions elasticity.
    use distgraph::elastic::{ElasticConfig, ElasticPlan};
    let sink_plain = TelemetrySink::recording();
    let sink_empty = TelemetrySink::recording();
    let r_plain = traced_job(&sink_plain);
    let r_empty = traced_elastic_job(&sink_empty, ElasticConfig::new(ElasticPlan::none()));
    assert_eq!(format!("{r_plain:?}"), format!("{r_empty:?}"), "job result");
    assert_eq!(
        sink_plain.chrome_trace_json(),
        sink_empty.chrome_trace_json(),
        "trace JSON"
    );
    assert_eq!(
        sink_plain.metrics_csv(),
        sink_empty.metrics_csv(),
        "metrics CSV"
    );
    assert_eq!(sink_plain.summary(), sink_empty.summary(), "summary");
    assert!(
        !sink_empty
            .chrome_trace_json()
            .contains("\"cat\":\"elastic\""),
        "an empty plan must emit no elastic spans"
    );
}

#[test]
fn trace_covers_elastic_events() {
    use distgraph::elastic::{ElasticConfig, ElasticPlan};
    let sink = TelemetrySink::recording();
    let result = traced_elastic_job(&sink, ElasticConfig::new(ElasticPlan::preempt_at(3, 2, 3)));
    assert_eq!(result.scale_events, 1);
    assert_eq!(result.evacuations, 1, "warning window of 3 must suffice");
    let spans = sink.spans();
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "elastic" && s.name == "preempt.m2"),
        "missing preempt span"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "elastic" && s.name == "evacuation.m2"),
        "missing evacuation span"
    );
    assert_eq!(sink.counter("elastic.evacuations"), 1);
    assert!(sink.counter("elastic.evacuated_bytes") > 0);
    // Elastic events survive into the exported artifacts.
    assert!(sink.chrome_trace_json().contains("\"cat\":\"elastic\""));
    assert!(sink.metrics_csv().contains("elastic.evacuations"));
}

#[test]
fn windowed_speculation_metrics_are_value_pinned() {
    // The adaptive-window controller's observable trajectory is part of the
    // determinism contract: every `par.spec_*` metric is a pure function of
    // (graph, seed, partitions, loaders, window) and independent of thread
    // count, so the exact values — not just the row names — can be pinned.
    let g = Dataset::LiveJournal.generate(0.05, 7);
    let run = |threads: u32| {
        let sink = TelemetrySink::recording();
        let ctx = PartitionContext::new(9)
            .with_seed(5)
            .with_loaders(4)
            .with_threads(threads)
            .with_window(WINDOW_AUTO)
            .with_telemetry(sink.clone());
        Strategy::Hdrf.build().partition(&g, &ctx);
        sink
    };
    let spec_rows = |sink: &TelemetrySink| -> String {
        sink.metrics_csv()
            .lines()
            .filter(|l| l.contains(",par.spec_"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    // This LiveJournal sample is hub-heavy, so most windows hit conflicts:
    // the controller shrinks from its 1024-edge start toward the 256 floor
    // (8 shrinks across the 4 loader blocks) and never grows past it.
    let golden = "counter,par.spec_edges,,1912\n\
                  counter,par.spec_repaired,,35549\n\
                  counter,par.spec_shrinks,,8\n\
                  counter,par.spec_windows,,132\n\
                  gauge,par.spec_repair_rate,,0.9489602519954086\n\
                  gauge,par.spec_window_size,,1024\n";
    let s1 = run(1);
    assert_eq!(spec_rows(&s1), golden, "spec metrics drifted at 1 thread");
    for threads in [2u32, 4, 7] {
        assert_eq!(
            spec_rows(&run(threads)),
            golden,
            "spec metrics depend on thread count ({threads})"
        );
    }
    // Under `--window auto` no fixed window exists, so the configured-window
    // gauge must be absent and the observed trajectory carries the story.
    assert!(!s1.metrics_csv().contains("par.window_size"));
}

#[test]
fn chrome_trace_matches_golden_file() {
    // A small hand-built trace pins the exporter's exact byte format:
    // metadata events first, integer-microsecond complete events sorted by
    // (tid, start asc, duration desc) so parents precede children.
    let sink = TelemetrySink::recording();
    sink.record_span("ingress", "ingress.Grid".to_string(), 0.0, 2.0);
    sink.record_machine_span("ingress", "load".to_string(), 0, 0.0, 1.5);
    sink.record_machine_span("ingress", "load".to_string(), 1, 0.0, 2.0);
    sink.set_time_offset(2.0);
    sink.record_span("superstep", "superstep.0".to_string(), 0.0, 1.0);
    sink.record_span("phase", "compute".to_string(), 0.0, 0.5);
    sink.record_span("phase", "network".to_string(), 0.5, 0.25);
    sink.record_span("phase", "sync".to_string(), 0.75, 0.25);
    sink.record_machine_span("machine", "work".to_string(), 1, 0.0, 0.5);
    // The gp-net categories added in the unreliable-network model: a
    // per-machine retry window and a cluster-track speculation span.
    sink.record_machine_span("net", "retry".to_string(), 0, 1.0, 0.25);
    sink.record_span("net", "speculate.m0->m1".to_string(), 1.0, 0.5);
    // The per-worker ingress lanes added by the deterministic-parallelism
    // layer: cat "par", one span per worker on its machine track.
    sink.record_machine_span("par", "par.ingress.worker0".to_string(), 0, 2.0, 0.75);
    sink.record_machine_span("par", "par.ingress.worker1".to_string(), 1, 2.0, 0.75);
    // The elastic-category spans from mid-job cluster events: a cluster-track
    // scale-out decision and the evacuation window streaming a preempted
    // machine's masters to surviving replicas.
    sink.record_span("elastic", "scale_out.k9".to_string(), 3.0, 0.5);
    sink.record_machine_span("elastic", "evacuation.m1".to_string(), 1, 3.0, 0.25);
    assert_eq!(sink.chrome_trace_json(), include_str!("golden_trace.json"));
    // Stripping the par category must recover a well-formed trace with the
    // same byte format and no par events.
    let stripped = distgraph::telemetry::trace_without_category(&sink.chrome_trace_json(), "par");
    assert!(!stripped.contains("\"cat\":\"par\""));
    assert!(stripped.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(stripped.ends_with("]}\n"));
}
