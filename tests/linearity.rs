//! Figs 5.3–5.5: on the synchronous GAS engine, network traffic, compute
//! time and peak memory are (increasing) linear functions of replication
//! factor. We check Pearson correlation across the four PowerGraph
//! strategies, per application, on the UK-web analogue.

use distgraph::cluster::ClusterSpec;
use distgraph::gen::Dataset;
use distgraph::partition::Strategy;
use gp_bench::{pearson, App, EngineKind, Pipeline};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Random,
    Strategy::Hdrf,
    Strategy::Oblivious,
    Strategy::Grid,
];

fn jobs(app: App) -> Vec<gp_bench::JobResult> {
    let mut pipeline = Pipeline::new(0.25, 42);
    let spec = ClusterSpec::ec2_25();
    STRATEGIES
        .iter()
        .map(|&s| pipeline.run(Dataset::UkWeb, s, &spec, EngineKind::PowerGraph, app))
        .collect()
}

fn check_linear(app: App, metric: impl Fn(&gp_bench::JobResult) -> f64, what: &str) {
    let jobs = jobs(app);
    let points: Vec<(f64, f64)> = jobs
        .iter()
        .map(|j| (j.replication_factor, metric(j)))
        .collect();
    let r = pearson(&points);
    assert!(
        r > 0.9,
        "{what} for {} should be linear in RF; pearson {r:.3}, points {points:?}",
        app.label()
    );
    // And increasing: the slope must be positive.
    let (_, slope) = gp_bench::linear_fit(&points);
    assert!(slope > 0.0, "{what} must increase with RF");
}

#[test]
fn network_io_linear_in_replication_factor() {
    for app in [
        App::PageRankFixed(10),
        App::Wcc,
        App::Sssp { undirected: true },
    ] {
        check_linear(app, |j| j.mean_net_in_bytes, "network IO");
    }
}

#[test]
fn compute_time_linear_in_replication_factor() {
    for app in [App::PageRankFixed(10), App::Wcc] {
        check_linear(app, |j| j.compute_seconds, "compute time");
    }
}

#[test]
fn peak_memory_linear_in_replication_factor() {
    for app in [App::PageRankFixed(10), App::Wcc] {
        check_linear(app, |j| j.peak_memory_bytes, "peak memory");
    }
}

#[test]
fn coloring_deviates_from_the_trend() {
    // §5.4.1: Simple Coloring runs on the async engine, whose per-update
    // lock overhead is RF-independent — so its compute time is much less
    // *sensitive* to replication factor than the synchronous apps' (the
    // figure shows its points off the shared trend line). We compare the
    // max/min time spread against PageRank's over the same RF spread.
    let spread = |jobs: &[gp_bench::JobResult]| {
        let times: Vec<f64> = jobs.iter().map(|j| j.compute_seconds).collect();
        times.iter().copied().fold(f64::MIN, f64::max)
            / times.iter().copied().fold(f64::MAX, f64::min)
    };
    let pr_spread = spread(&jobs(App::PageRankFixed(10)));
    let col_spread = spread(&jobs(App::Coloring));
    assert!(
        col_spread < pr_spread,
        "async coloring should be less RF-sensitive: coloring spread {col_spread:.2}x \
         vs PageRank {pr_spread:.2}x"
    );
}
