//! The decision trees must agree with measurement: for each scenario, run
//! every candidate strategy end-to-end and check that the tree's
//! recommendation lands within tolerance of the measured best total time.

use distgraph::advisor::{self, Workload};
use distgraph::cluster::ClusterSpec;
use distgraph::gen::{classify, Dataset};
use distgraph::partition::Strategy;
use gp_bench::{App, EngineKind, Pipeline};

const SCALE: f64 = 0.25;
const SEED: u64 = 42;

/// Run `strategies` on (dataset, cluster, engine, app) and return
/// (strategy, total seconds) sorted best-first.
fn measure(
    dataset: Dataset,
    spec: &ClusterSpec,
    engine: EngineKind,
    app: App,
    strategies: &[Strategy],
) -> Vec<(Strategy, f64)> {
    let mut pipeline = Pipeline::new(SCALE, SEED);
    let mut timed: Vec<(Strategy, f64)> = strategies
        .iter()
        .filter(|s| s.supports_partition_count(engine.partitions(spec)))
        .map(|&s| {
            let job = pipeline.run(dataset, s, spec, engine, app);
            (s, job.total_seconds())
        })
        .collect();
    timed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    timed
}

/// The recommendation must be within `slack` of the measured best.
fn assert_recommended_near_best(
    timed: &[(Strategy, f64)],
    recommended: &[Strategy],
    slack: f64,
    context: &str,
) {
    let best_time = timed[0].1;
    let rec_time = timed
        .iter()
        .find(|(s, _)| recommended.contains(s))
        .map(|(_, t)| *t)
        .unwrap_or_else(|| panic!("{context}: recommendation {recommended:?} not measured"));
    assert!(
        rec_time <= best_time * slack,
        "{context}: recommended {recommended:?} took {rec_time:.1}s but best was \
         {:?} at {best_time:.1}s (measured: {timed:?})",
        timed[0].0
    );
}

#[test]
fn powergraph_tree_matches_measurement_on_heavy_tailed_graphs() {
    let spec = ClusterSpec::ec2_25();
    let dataset = Dataset::Twitter;
    let class = classify(&dataset.generate(SCALE, SEED));
    let app = App::PageRankFixed(10);
    let timed = measure(
        dataset,
        &spec,
        EngineKind::PowerGraph,
        app,
        &[
            Strategy::Random,
            Strategy::Grid,
            Strategy::Oblivious,
            Strategy::Hdrf,
        ],
    );
    let rec = advisor::powergraph(&Workload {
        graph_class: class,
        machines: spec.machines,
        compute_ingress_ratio: 0.5,
        natural_app: app.is_natural(),
    });
    assert_recommended_near_best(&timed, &rec.strategies, 1.10, "PowerGraph/Twitter/PR10");
}

#[test]
fn powergraph_tree_matches_measurement_on_road_networks() {
    let spec = ClusterSpec::local_9();
    let dataset = Dataset::RoadNetCa;
    let class = classify(&dataset.generate(SCALE, SEED));
    // Long job on a road network: WCC to convergence (high diameter).
    let app = App::Wcc;
    let timed = measure(
        dataset,
        &spec,
        EngineKind::PowerGraph,
        app,
        &[
            Strategy::Random,
            Strategy::Grid,
            Strategy::Oblivious,
            Strategy::Hdrf,
        ],
    );
    let rec = advisor::powergraph(&Workload {
        graph_class: class,
        machines: spec.machines,
        compute_ingress_ratio: 3.0,
        natural_app: false,
    });
    assert_recommended_near_best(&timed, &rec.strategies, 1.10, "PowerGraph/road-CA/WCC");
}

#[test]
fn powergraph_tree_job_duration_crossover_on_power_law() {
    // Table 5.1: Grid wins the short job, HDRF/Oblivious the long one.
    let spec = ClusterSpec::ec2_25();
    let dataset = Dataset::UkWeb;
    let strategies = [Strategy::Grid, Strategy::Hdrf];
    let short = measure(
        dataset,
        &spec,
        EngineKind::PowerGraph,
        App::PageRankConv,
        &strategies,
    );
    assert_eq!(
        short[0].0,
        Strategy::Grid,
        "short job should favor Grid: {short:?}"
    );
    // The long job is the paper's k-core sweep, recentred on the analogue's
    // mid-degree band (see `App::kcore_paper`): with the paper's absolute
    // k=10..=20 the down-scaled analogue's surviving core is pure hubs,
    // which are mirrored on every machine under both strategies, so the
    // replication-factor gap (Grid 6.4 vs HDRF 4.8 here) never reaches the
    // network term and the crossover the experiment demonstrates vanishes.
    let long = measure(
        dataset,
        &spec,
        EngineKind::PowerGraph,
        App::kcore_paper(),
        &strategies,
    );
    assert_eq!(
        long[0].0,
        Strategy::Hdrf,
        "long job should favor HDRF: {long:?}"
    );
}

#[test]
fn powerlyra_tree_matches_measurement_for_natural_apps() {
    let spec = ClusterSpec::ec2_25();
    let dataset = Dataset::UkWeb;
    let class = classify(&dataset.generate(SCALE, SEED));
    let app = App::PageRankFixed(30); // long natural job
    let timed = measure(
        dataset,
        &spec,
        EngineKind::PowerLyra,
        app,
        &[
            Strategy::Random,
            Strategy::Grid,
            Strategy::Oblivious,
            Strategy::Hybrid,
            Strategy::HybridGinger,
        ],
    );
    let rec = advisor::powerlyra(&Workload {
        graph_class: class,
        machines: spec.machines,
        compute_ingress_ratio: 2.0,
        natural_app: true,
    });
    assert_recommended_near_best(&timed, &rec.strategies, 1.15, "PowerLyra/UK-web/PR30");
}

#[test]
fn graphx_all_tree_matches_measurement() {
    let spec = ClusterSpec::local_9();
    let engine = EngineKind::graphx_default();
    // Low-degree, short job → Canonical Random.
    let road_class = classify(&Dataset::RoadNetCa.generate(SCALE, SEED));
    let timed = measure(
        Dataset::RoadNetCa,
        &spec,
        engine,
        App::Sssp { undirected: false },
        &Strategy::POWERLYRA_ALL,
    );
    let rec = advisor::graphx_all(&Workload {
        graph_class: road_class,
        machines: spec.machines,
        compute_ingress_ratio: 0.3,
        natural_app: true,
    });
    assert_recommended_near_best(&timed, &rec.strategies, 1.10, "GraphX/road-CA/SSSP");

    // Power-law → 2D.
    let lj_class = classify(&Dataset::LiveJournal.generate(SCALE, SEED));
    let timed = measure(
        Dataset::LiveJournal,
        &spec,
        engine,
        App::PageRankFixed(25),
        &Strategy::POWERLYRA_ALL,
    );
    let rec = advisor::graphx_all(&Workload {
        graph_class: lj_class,
        machines: spec.machines,
        compute_ingress_ratio: 2.0,
        natural_app: true,
    });
    assert_recommended_near_best(&timed, &rec.strategies, 1.10, "GraphX/LJ/PR25");
}

#[test]
fn suboptimal_choice_costs_real_time() {
    // §1.1: "selecting a suboptimal partitioning strategy could lead to an
    // overall slowdown of up to 1.9x compared to an optimal strategy".
    let spec = ClusterSpec::ec2_25();
    let timed = measure(
        Dataset::Twitter,
        &spec,
        EngineKind::PowerGraph,
        App::PageRankFixed(10),
        &[
            Strategy::Random,
            Strategy::Grid,
            Strategy::Oblivious,
            Strategy::Hdrf,
        ],
    );
    let best = timed.first().unwrap().1;
    let worst = timed.last().unwrap().1;
    assert!(
        worst / best > 1.25,
        "strategy choice should matter; spread only {:.2}x ({timed:?})",
        worst / best
    );
}
