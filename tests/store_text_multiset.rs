//! Cross-checks the two on-disk representations against the generator. The
//! compressed `.gps` store must preserve the edge multiset *and the vertex
//! ids* exactly. The text path is weaker by design: `parse_edge_list` interns
//! external ids in first-appearance order (the SNAP convention for sparse
//! ids), so reading back a dense-id file yields an isomorphic graph under a
//! vertex relabeling — the multiset only matches after mapping dense ids
//! back through `original_ids`. This is why content-hashed partitions of the
//! same graph can differ between its text and `.gps` forms, while the
//! streamed-vs-in-memory identity (same representation, two access paths)
//! is exact.

use distgraph::core::io::{read_edge_list, to_original, write_edge_list as write_text};
use distgraph::store::GraphStore;

fn canon(pairs: impl Iterator<Item = (u64, u64)>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = pairs.collect();
    v.sort_unstable();
    v
}

#[test]
fn text_and_store_round_trips_agree_on_the_edge_multiset() {
    let graph = distgraph::gen::Dataset::LiveJournal.generate_with_edges(400_000, 7);
    let original = canon(graph.edges().iter().map(|e| (e.src.0, e.dst.0)));

    // Text: multiset preserved up to the documented dense-id relabeling.
    let dir = std::env::temp_dir().join("distgraph-multiset-test");
    std::fs::create_dir_all(&dir).unwrap();
    let txt = dir.join("g.txt");
    write_text(
        &graph,
        std::io::BufWriter::new(std::fs::File::create(&txt).unwrap()),
    )
    .unwrap();
    let loaded = read_edge_list(&txt).unwrap();
    assert_eq!(
        graph.num_edges(),
        loaded.graph.num_edges(),
        "text changed |E|"
    );
    let unmapped = canon(
        loaded
            .graph
            .edges()
            .iter()
            .map(|&e| to_original(e, &loaded.original_ids)),
    );
    assert_eq!(original, unmapped, "text round trip changed the multiset");

    // Store: multiset AND ids preserved exactly.
    let mut bytes = std::io::Cursor::new(Vec::new());
    distgraph::store::write_edge_list(&mut bytes, &graph).unwrap();
    let store = GraphStore::open_bytes(bytes.into_inner()).unwrap();
    let from_store = store.to_edge_list();
    assert_eq!(
        graph.num_edges(),
        from_store.num_edges(),
        "store changed |E|"
    );
    assert_eq!(
        original,
        canon(from_store.edges().iter().map(|e| (e.src.0, e.dst.0))),
        "store round trip changed edges or ids"
    );
}
